#include "core/mux_merge.h"

#include <algorithm>
#include <map>

namespace salsa {

namespace {

struct ProtoMux {
  Pin sink;
  std::map<int, uint64_t> active;  // step -> source key
  std::map<uint64_t, Endpoint> sources;
};

bool compatible(const ProtoMux& a, const ProtoMux& b) {
  // Walk the sparse activity maps looking for a step where both muxes must
  // route, with different sources.
  auto ia = a.active.begin();
  auto ib = b.active.begin();
  while (ia != a.active.end() && ib != b.active.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      if (ia->second != ib->second) return false;
      ++ia;
      ++ib;
    }
  }
  return true;
}

}  // namespace

MuxMergeResult merge_muxes(const Binding& b) {
  // Group connection uses per sink pin.
  std::map<uint64_t, ProtoMux> pins;
  for (const ConnUse& u : connection_uses(b)) {
    if (u.src.kind == Endpoint::Kind::kConstPort) continue;
    ProtoMux& pm = pins[key_of(u.sink)];
    pm.sink = u.sink;
    pm.active[u.step] = key_of(u.src);
    pm.sources.emplace(key_of(u.src), u.src);
  }

  MuxMergeResult out;
  std::vector<ProtoMux> muxes;
  for (auto& [key, pm] : pins) {
    (void)key;
    out.muxes_before += static_cast<int>(pm.sources.size()) - 1;
    if (pm.sources.size() >= 2) muxes.push_back(std::move(pm));
  }

  std::vector<bool> used(muxes.size(), false);
  for (size_t i = 0; i < muxes.size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    ProtoMux merged = muxes[i];
    MergedMux mm;
    mm.sinks.push_back(merged.sink);
    for (size_t j = i + 1; j < muxes.size(); ++j) {
      if (used[j]) continue;
      if (!compatible(merged, muxes[j])) continue;
      // Merging is only a reduction when source sets overlap: the merged
      // selector has |union|-1 equivalent 2-1 muxes versus the separate
      // (|A|-1)+(|B|-1).
      int overlap = 0;
      for (const auto& [k, e] : muxes[j].sources) {
        (void)e;
        overlap += merged.sources.count(k) > 0;
      }
      if (overlap == 0) continue;  // would add |B| width but only save |B|-1
      used[j] = true;
      mm.sinks.push_back(muxes[j].sink);
      for (const auto& [step, src] : muxes[j].active) merged.active[step] = src;
      for (const auto& [k, e] : muxes[j].sources) merged.sources.emplace(k, e);
    }
    for (const auto& [k, e] : merged.sources) {
      (void)k;
      mm.sources.push_back(e);
    }
    out.muxes_after += mm.width();
    out.muxes.push_back(std::move(mm));
  }
  return out;
}

}  // namespace salsa
