// The fifth-order elliptic wave filter (EWF) benchmark — the paper's Table 2
// workload and the most widely used benchmark of the classic HLS literature
// [2,17]. This is a faithful structural reconstruction (the original
// benchmark file is not distributable): 34 operations — 26 additions and 8
// multiplications by filter coefficients — over 7 loop-carried state
// variables, one sample input and one sample output, with the canonical
// 17-control-step critical path under the paper's timing assumptions
// (adders 1 step, multipliers 2 steps). tests/test_ewf.cpp pins all of
// these properties.
#pragma once

#include "cdfg/cdfg.h"

namespace salsa {

/// Builds the EWF CDFG. Multiplier coefficients are small integer constants
/// (stand-ins for the filter coefficients; constants are cost-free in the
/// allocation model, Section 5).
Cdfg make_ewf();

/// The unfolded EWF: `factor` filter iterations chained combinationally
/// within one loop body (one sample in, one sample out per instance; the
/// classic 68-operation stress workload for factor 2). States wrap from the
/// last instance back to the first.
Cdfg make_ewf_unrolled(int factor);

}  // namespace salsa
