#include "bench_suite/dct.h"

#include <array>

#include "util/strings.h"

namespace salsa {

Cdfg make_dct() {
  Cdfg g("dct8");
  std::array<ValueId, 8> x{};
  for (int i = 0; i < 8; ++i)
    x[static_cast<size_t>(i)] = g.add_input(numbered("x", i));

  const ValueId c1 = g.add_const(251, "c1");
  const ValueId c2 = g.add_const(237, "c2");
  const ValueId c3 = g.add_const(213, "c3");
  const ValueId c4 = g.add_const(181, "c4");
  const ValueId c5 = g.add_const(142, "c5");
  const ValueId c6 = g.add_const(98, "c6");
  const ValueId c7 = g.add_const(50, "c7");
  const ValueId c2m = g.add_const(-237, "c2m");
  const ValueId c4m = g.add_const(-181, "c4m");

  auto add = [&](ValueId a, ValueId b, const char* n) {
    return g.add_op(OpKind::kAdd, a, b, n);
  };
  auto sub = [&](ValueId a, ValueId b, const char* n) {
    return g.add_op(OpKind::kSub, a, b, n);
  };
  auto mul = [&](ValueId a, ValueId k, const char* n) {
    return g.add_op(OpKind::kMul, a, k, n);
  };

  // Stage 1: input butterflies.
  const ValueId s0 = add(x[0], x[7], "s0");
  const ValueId s1 = add(x[1], x[6], "s1");
  const ValueId s2 = add(x[2], x[5], "s2");
  const ValueId s3 = add(x[3], x[4], "s3");
  const ValueId d0 = sub(x[0], x[7], "d0");
  const ValueId d1 = sub(x[1], x[6], "d1");
  const ValueId d2 = sub(x[2], x[5], "d2");
  const ValueId d3 = sub(x[3], x[4], "d3");

  // Even half: 4-point DCT.
  const ValueId t0 = add(s0, s3, "t0");
  const ValueId t1 = add(s1, s2, "t1");
  const ValueId t2 = sub(s0, s3, "t2");
  const ValueId t3 = sub(s1, s2, "t3");
  const ValueId X0 = mul(add(t0, t1, "t01"), c4, "X0");
  const ValueId X4 = mul(sub(t1, t0, "t10"), c4m, "X4");
  const ValueId X2 = add(mul(t2, c2, "t2c2"), mul(t3, c6, "t3c6"), "X2");
  const ValueId X6 = add(mul(t2, c6, "t2c6"), mul(t3, c2m, "t3c2m"), "X6");

  // Odd half: shared-term rotations (sign factors absorbed into constants).
  const ValueId g0 = add(d0, d3, "g0");
  const ValueId g1 = add(d1, d2, "g1");
  const ValueId g2 = add(d0, d1, "g2");
  const ValueId g3 = add(d2, d3, "g3");
  const ValueId h0 = mul(g0, c1, "h0");
  const ValueId h1 = mul(g1, c3, "h1");
  const ValueId h2 = mul(g2, c5, "h2");
  const ValueId h3 = mul(g3, c7, "h3");
  const ValueId p0 = mul(d0, c3, "p0");
  const ValueId p1 = mul(d1, c5, "p1");
  const ValueId p2 = mul(d2, c7, "p2");
  const ValueId p3 = mul(d3, c1, "p3");
  const ValueId q0 = mul(d1, c4, "q0");
  const ValueId q1 = mul(d2, c4, "q1");

  const ValueId X1 = add(add(h0, p1, "o1a"), add(h2, q0, "o1b"), "X1");
  const ValueId X3 = add(add(h1, p0, "o3a"), add(h3, q1, "o3b"), "X3");
  const ValueId X5 = add(add(h2, p3, "o5a"), add(h0, q1, "o5b"), "X5");
  const ValueId X7 = add(add(h3, p2, "o7a"), add(h1, q0, "o7b"), "X7");

  const std::array<ValueId, 8> X{X0, X1, X2, X3, X4, X5, X6, X7};
  for (int i = 0; i < 8; ++i)
    g.add_output(X[static_cast<size_t>(i)], "out" + std::to_string(i));

  g.validate();
  return g;
}

}  // namespace salsa
