// Shared plumbing for the benchmark harnesses: problem construction from a
// (benchmark, length, pipelining, spare registers) tuple, the standard
// traditional-vs-SALSA allocation pair used by the table generators, and
// the pool-aware row generators behind bench_table2_ewf / bench_table3_dct.
//
// The SALSA run always additionally refines the traditional winner with the
// extended move set and keeps the better result — the extended binding model
// strictly subsumes the traditional one, so reporting anything worse would
// be a search artifact, not a model property.
//
// The table generators fan their config-grid rows out over the shared
// thread pool (util/thread_pool.h:parallel_map). Each row is seeded by its
// grid position alone and parallel_map collects in index order, so row
// ordering and every table value are identical for any thread count —
// tests/test_benchmarks.cpp pins this.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baseline/traditional.h"
#include "core/allocator.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"
#include "util/thread_pool.h"

namespace salsa::benchharness {

struct ProblemBundle {
  std::unique_ptr<Cdfg> graph;
  std::unique_ptr<Schedule> schedule;
  std::unique_ptr<AllocProblem> problem;
  FuBudget fus;
  int min_regs = 0;
};

ProblemBundle make_problem(Cdfg graph, int length, bool pipelined,
                           int extra_regs);

struct Comparison {
  AllocationResult traditional;
  AllocationResult salsa;
  bool traditional_feasible = true;
};

ImproveParams standard_improve(uint64_t seed);

Comparison run_comparison(const AllocProblem& prob, uint64_t seed);

/// Search effort for one table row; the defaults reproduce the historical
/// (sequential) tables. Tests shrink these to keep the par-invariance
/// regression fast.
struct TableBudget {
  int max_trials = 12;
  int moves_per_trial = 5000;
  int restarts = 2;
};

/// One rendered-table row of bench_table2_ewf / bench_table3_dct, fully
/// determined by its grid position and the budget (never by thread count).
struct TableRow {
  int steps = 0;
  bool pipelined = false;
  int alus = 0;
  int muls = 0;
  int regs = 0;
  bool traditional_feasible = false;
  int trad_muxes = 0;   ///< meaningful only when traditional_feasible
  int trad_merged = 0;  ///< meaningful only when traditional_feasible
  int salsa_muxes = 0;
  int salsa_merged = 0;
  std::string winner;

  friend bool operator==(const TableRow&, const TableRow&) = default;
};

/// The paper's Table 2 grid (EWF: schedule lengths x pipelining x spare
/// registers), one allocation comparison per row, fanned out over the pool.
std::vector<TableRow> table2_rows(const TableBudget& budget,
                                  Parallelism parallelism = {});

/// The paper's Table 3 grid (DCT: four schedules x spare registers).
std::vector<TableRow> table3_rows(const TableBudget& budget,
                                  Parallelism parallelism = {});

/// One row of the throughput record bench_runtime emits
/// (BENCH_throughput.json): a benchmark's served-move rate at one
/// (threads, k) proposal-pipeline setting.
struct ThroughputRow {
  std::string benchmark;
  double moves_per_sec = 0;
  int threads = 1;
  int k = 1;
};

/// One row of the large-design scaling record bench_runtime emits
/// (BENCH_scaling.json): sequential engine-move throughput and memory
/// high-water mark at one design size. `peak_rss_mb` is the process-wide
/// resident high-water (getrusage ru_maxrss) sampled after the run — the
/// sweep executes sizes in ascending order, so each row's value bounds the
/// memory needed up to and including its design.
struct ScalingRow {
  std::string benchmark;
  std::string family;  ///< generator family ("cascade", "dag", ...) or "ewf"
  int ops = 0;         ///< operator count of the measured design
  int length = 0;      ///< schedule length in control steps
  int regs = 0;        ///< register budget
  double moves_per_sec = 0;
  double peak_rss_mb = 0;
};

/// `git describe --always --dirty --tags` of the tree the benchmark runs
/// in, or `fallback` when git (or a repository) is unavailable — bench
/// binaries run from arbitrary build directories.
std::string git_describe(std::string fallback = "unknown");

/// Writes the rows to `path` as a JSON array of {benchmark, moves_per_sec,
/// threads, k, git} objects. Overwrites; fails hard on I/O errors so CI
/// artifact uploads never silently archive a stale record.
void write_throughput_json(const std::string& path,
                           const std::vector<ThroughputRow>& rows,
                           const std::string& git_version);

/// Writes the scaling rows to `path` as a JSON array of {benchmark, family,
/// ops, length, regs, moves_per_sec, ns_per_move, peak_rss_mb, git}
/// objects (ns_per_move is derived from moves_per_sec at write time).
/// Overwrites; fails hard on I/O errors like write_throughput_json.
void write_scaling_json(const std::string& path,
                        const std::vector<ScalingRow>& rows,
                        const std::string& git_version);

}  // namespace salsa::benchharness
