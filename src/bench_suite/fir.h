// 8-tap FIR filter with an explicit delay line: 8 coefficient
// multiplications, 7 accumulation additions, and 7 register-to-register
// shift moves expressed as Nop operations — the benchmark that exercises
// scheduled No-Op nodes (the paper's slack nodes as first-class operators).
#pragma once

#include "cdfg/cdfg.h"

namespace salsa {

Cdfg make_fir8();

}  // namespace salsa
