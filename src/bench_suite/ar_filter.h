// Four-stage autoregressive lattice filter: 16 multiplications and 12
// additions over four loop-carried states — the classic "AR filter"
// benchmark size. A second cyclic workload (besides the EWF) with a much
// higher multiplier density.
#pragma once

#include "cdfg/cdfg.h"

namespace salsa {

Cdfg make_ar_filter();

}  // namespace salsa
