// 8-point one-dimensional discrete cosine transform — the paper's Table 3
// workload, drawn from the Philips "One-Dimensional Linear Picture
// Transformer" implementation [18,19]. Reconstructed as an even/odd-
// decomposition fast-DCT flow graph adjusted to the paper's exact census:
// 25 additions, 7 subtractions and 16 multiplications (Section 5), eight
// inputs, eight outputs, acyclic. tests/test_dct.cpp pins the census and
// critical path.
#pragma once

#include "cdfg/cdfg.h"

namespace salsa {

/// Builds the DCT CDFG (coefficients as small integer constants; constants
/// are cost-free in the allocation model).
Cdfg make_dct();

}  // namespace salsa
