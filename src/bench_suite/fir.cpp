#include "bench_suite/fir.h"

#include <array>

#include "util/strings.h"

namespace salsa {

Cdfg make_fir8() {
  Cdfg g("fir8");
  const ValueId in = g.add_input("in");
  std::array<ValueId, 7> tap{};
  for (int i = 0; i < 7; ++i)
    tap[static_cast<size_t>(i)] = g.add_state(numbered("z", i + 1));

  // Delay-line shift: z1' = in, z_{k}' = z_{k-1}. A state's next content
  // must be a computed value, so each shift is an explicit Nop move.
  g.set_state_next(tap[0], g.add_nop(in, "shift1"));
  for (int i = 1; i < 7; ++i)
    g.set_state_next(tap[static_cast<size_t>(i)],
                     g.add_nop(tap[static_cast<size_t>(i - 1)],
                               numbered("shift", i + 1)));

  // Tapped sum: y = c0*in + sum c_i * z_i.
  ValueId acc = g.add_op(OpKind::kMul, in, g.add_const(2, "c0"), "p0");
  for (int i = 0; i < 7; ++i) {
    const ValueId p = g.add_op(
        OpKind::kMul, tap[static_cast<size_t>(i)],
        g.add_const(3 + 2 * i, numbered("c", i + 1)),
        numbered("p", i + 1));
    acc = g.add_op(OpKind::kAdd, acc, p, numbered("acc", i + 1));
  }
  g.add_output(acc, "y");
  g.validate();
  return g;
}

}  // namespace salsa
