#include "bench_suite/ewf.h"

#include <array>

namespace salsa {

namespace {

// One EWF iteration body: consumes the sample input and the seven current
// state values, produces the filter output and the seven next states.
// 26 additions, 8 constant multiplications per instance.
struct EwfBody {
  ValueId out;
  std::array<ValueId, 7> next;
};

EwfBody build_ewf_body(Cdfg& g, ValueId inp, const std::array<ValueId, 7>& sv,
                       const std::array<ValueId, 8>& k,
                       const std::string& suffix) {
  auto add = [&](ValueId a, ValueId b, const char* n) {
    return g.add_op(OpKind::kAdd, a, b, std::string(n) + suffix);
  };
  auto mul = [&](ValueId a, ValueId c, const char* n) {
    return g.add_op(OpKind::kMul, a, c, std::string(n) + suffix);
  };
  const ValueId s2 = sv[0], s13 = sv[1], s18 = sv[2], s26 = sv[3],
                s33 = sv[4], s38 = sv[5], s39 = sv[6];

  // Central adaptor spine (the filter's longest carry chain: 17 steps).
  const ValueId a1 = add(inp, s2, "a1");
  const ValueId a2 = add(a1, s13, "a2");
  const ValueId m1 = mul(a2, k[0], "m1");
  const ValueId a3 = add(m1, s18, "a3");
  const ValueId a4 = add(a3, a2, "a4");
  const ValueId m2 = mul(a4, k[1], "m2");
  const ValueId a5 = add(m2, s26, "a5");
  const ValueId a6 = add(a5, a4, "a6");
  const ValueId m3 = mul(a6, k[2], "m3");
  const ValueId a7 = add(m3, s33, "a7");
  const ValueId a8 = add(a7, a6, "a8");
  const ValueId a9 = add(a8, a5, "a9");
  const ValueId a10 = add(a9, a3, "a10");
  const ValueId a11 = add(a10, a1, "a11");

  // Left wing: output branch and the sv13/sv39 adaptors.
  const ValueId m4 = mul(a2, k[3], "m4");
  const ValueId b1 = add(m4, s39, "b1");
  const ValueId b2 = add(b1, a3, "b2");
  const ValueId m5 = mul(b2, k[4], "m5");
  const ValueId b3 = add(m5, b1, "b3");
  const ValueId b4 = add(b3, a5, "b4");
  const ValueId b5 = add(b4, b2, "b5");
  const ValueId b6 = add(b3, a6, "b6");

  // Right wing: the sv18/sv26/sv33/sv38 adaptors.
  const ValueId m6 = mul(a4, k[5], "m6");
  const ValueId e1 = add(m6, s38, "e1");
  const ValueId e2 = add(e1, a5, "e2");
  const ValueId m7 = mul(a6, k[6], "m7");
  const ValueId e3 = add(m7, e2, "e3");
  const ValueId e4 = add(e3, a7, "e4");
  const ValueId m8 = mul(a8, k[7], "m8");
  const ValueId e5 = add(m8, e4, "e5");
  const ValueId e6 = add(e1, b3, "e6");

  // Output accumulation branch.
  const ValueId d1 = add(b1, e1, "d1");
  const ValueId d2 = add(d1, m6, "d2");
  const ValueId d3 = add(d2, b4, "d3");

  return EwfBody{d3, {a11, b5, e2, e4, e5, e6, b6}};
}

std::array<ValueId, 8> ewf_coefficients(Cdfg& g) {
  return {g.add_const(3, "k1"),  g.add_const(5, "k2"),  g.add_const(7, "k3"),
          g.add_const(11, "k4"), g.add_const(13, "k5"), g.add_const(17, "k6"),
          g.add_const(19, "k7"), g.add_const(23, "k8")};
}

constexpr const char* kStateNames[7] = {"sv2",  "sv13", "sv18", "sv26",
                                        "sv33", "sv38", "sv39"};

}  // namespace

Cdfg make_ewf() {
  Cdfg g("ewf");
  const ValueId inp = g.add_input("inp");
  std::array<ValueId, 7> sv{};
  for (int i = 0; i < 7; ++i)
    sv[static_cast<size_t>(i)] = g.add_state(kStateNames[i]);
  const auto k = ewf_coefficients(g);
  const EwfBody body = build_ewf_body(g, inp, sv, k, "");
  for (int i = 0; i < 7; ++i)
    g.set_state_next(sv[static_cast<size_t>(i)],
                     body.next[static_cast<size_t>(i)]);
  g.add_output(body.out, "outp");
  g.validate();
  return g;
}

Cdfg make_ewf_unrolled(int factor) {
  SALSA_CHECK_MSG(factor >= 1, "unroll factor must be positive");
  Cdfg g("ewf_u" + std::to_string(factor));
  std::array<ValueId, 7> sv{};
  for (int i = 0; i < 7; ++i)
    sv[static_cast<size_t>(i)] = g.add_state(kStateNames[i]);
  const auto k = ewf_coefficients(g);
  std::array<ValueId, 7> cur = sv;
  for (int u = 0; u < factor; ++u) {
    const ValueId inp = g.add_input("inp" + std::to_string(u));
    const EwfBody body = build_ewf_body(g, inp, cur, k,
                                        "_i" + std::to_string(u));
    g.add_output(body.out, "outp" + std::to_string(u));
    cur = body.next;
  }
  for (int i = 0; i < 7; ++i)
    g.set_state_next(sv[static_cast<size_t>(i)], cur[static_cast<size_t>(i)]);
  g.validate();
  return g;
}

}  // namespace salsa
