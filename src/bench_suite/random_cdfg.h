// Random CDFG generation for property-based testing: arbitrary well-formed
// graphs (optionally with loop-carried states) whose allocations must always
// verify statically and match the behavioural evaluator on the datapath
// simulator, whatever the seed.
#pragma once

#include "cdfg/cdfg.h"

namespace salsa {

struct RandomCdfgParams {
  int num_inputs = 3;
  int num_consts = 2;
  int num_states = 2;
  int num_ops = 20;
  double mul_frac = 0.3;  ///< fraction of ops that are multiplications
  double sub_frac = 0.2;  ///< fraction of ops that are subtractions
  uint64_t seed = 1;
};

/// Builds a random, validated CDFG: every state is read and rewritten with a
/// feasible anti-dependence, every non-constant value is consumed (by an op,
/// a state rewrite, or an output).
Cdfg make_random_cdfg(const RandomCdfgParams& params);

}  // namespace salsa
