// The HAL differential-equation benchmark (Paulin [2]): one Euler step of
// y'' + 3xy' + 3y = 0. Six multiplications (two with data×data operands,
// exercising general multiplier inputs), two subtractions, two additions.
#pragma once

#include "cdfg/cdfg.h"

namespace salsa {

Cdfg make_diffeq();

}  // namespace salsa
