#include "bench_suite/ar_filter.h"

#include <array>

#include "util/strings.h"

namespace salsa {

Cdfg make_ar_filter() {
  Cdfg g("ar_filter");
  const ValueId in = g.add_input("in");
  std::array<ValueId, 4> r{};
  for (int i = 0; i < 4; ++i)
    r[static_cast<size_t>(i)] = g.add_state(numbered("r", i + 1));

  auto mul = [&](ValueId a, ValueId b, const std::string& n) {
    return g.add_op(OpKind::kMul, a, b, n);
  };
  auto add = [&](ValueId a, ValueId b, const std::string& n) {
    return g.add_op(OpKind::kAdd, a, b, n);
  };

  ValueId x = in;
  std::array<ValueId, 4> stage_out{};
  ValueId prev_next = kInvalidId;
  for (int i = 0; i < 4; ++i) {
    const std::string si = std::to_string(i + 1);
    const ValueId a = g.add_const(2 * i + 3, "a" + si);
    const ValueId bq = g.add_const(2 * i + 5, "b" + si);
    const ValueId c = g.add_const(2 * i + 7, "c" + si);
    const ValueId d = g.add_const(2 * i + 9, "d" + si);
    const ValueId st = r[static_cast<size_t>(i)];
    const ValueId m1 = mul(x, a, "m1_" + si);
    const ValueId m2 = mul(st, bq, "m2_" + si);
    const ValueId xo = add(m1, m2, "x" + si);
    const ValueId m3 = mul(x, c, "m3_" + si);
    const ValueId m4 = mul(st, d, "m4_" + si);
    ValueId rn = add(m3, m4, "rn" + si);
    if (i == 3) rn = add(rn, prev_next, "rn4b");  // 12th addition
    g.set_state_next(st, rn);
    stage_out[static_cast<size_t>(i)] = xo;
    prev_next = xo;
    x = xo;
  }

  const ValueId acc1 = add(stage_out[0], stage_out[1], "acc1");
  const ValueId acc2 = add(stage_out[2], stage_out[3], "acc2");
  const ValueId y = add(acc1, acc2, "y");
  g.add_output(y, "out");
  g.validate();
  return g;
}

}  // namespace salsa
