#include "bench_suite/harness.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "util/diagnostics.h"

namespace salsa::benchharness {

ProblemBundle make_problem(Cdfg graph, int length, bool pipelined,
                           int extra_regs) {
  ProblemBundle b;
  b.graph = std::make_unique<Cdfg>(std::move(graph));
  HwSpec hw;
  hw.pipelined_mul = pipelined;
  const FuSearchResult sr = schedule_min_fu(*b.graph, hw, length);
  b.schedule = std::make_unique<Schedule>(sr.schedule);
  b.fus = sr.fus;
  b.min_regs = Lifetimes(*b.schedule).min_registers();
  b.problem = std::make_unique<AllocProblem>(
      *b.schedule, FuPool::standard(b.fus), b.min_regs + extra_regs);
  return b;
}

ImproveParams standard_improve(uint64_t seed) {
  ImproveParams p;
  p.max_trials = 12;
  p.moves_per_trial = 5000;
  p.uphill_per_trial = 8;
  p.seed = seed;
  return p;
}

namespace {

ImproveParams budget_improve(const TableBudget& budget, uint64_t seed) {
  ImproveParams p = standard_improve(seed);
  p.max_trials = budget.max_trials;
  p.moves_per_trial = budget.moves_per_trial;
  return p;
}

// run_comparison generalised over the row budget. Restart fan-out stays
// sequential here: when the row grid itself runs on the pool, nesting a
// second level of parallelism would only oversubscribe (results are
// thread-count-invariant either way).
Comparison run_budget_comparison(const AllocProblem& prob, uint64_t seed,
                                 const TableBudget& budget) {
  Comparison out{AllocationResult{Binding(prob), {}, {}, {}},
                 AllocationResult{Binding(prob), {}, {}, {}}, true};
  TraditionalOptions topt;
  topt.improve = budget_improve(budget, seed);
  topt.restarts = budget.restarts;
  try {
    out.traditional = allocate_traditional(prob, topt);
  } catch (const Error&) {
    // No contiguous placement exists within the register budget: the
    // traditional model cannot implement this row at all (the situation the
    // paper's tightest Table 2 rows exploit).
    out.traditional_feasible = false;
  }

  AllocatorOptions sopt;
  sopt.improve = budget_improve(budget, seed + 1);
  sopt.restarts = budget.restarts;
  sopt.parallelism = Parallelism::sequential_only();
  out.salsa = allocate(prob, sopt);
  if (out.traditional_feasible) {
    ImproveParams refine = budget_improve(budget, seed + 2);
    ImproveResult r = improve(out.traditional.binding, refine);
    if (r.cost.total < out.salsa.cost.total) {
      out.salsa.binding = std::move(r.best);
      out.salsa.cost = r.cost;
      out.salsa.merging = merge_muxes(out.salsa.binding);
    }
  }
  return out;
}

struct GridPoint {
  int steps = 0;
  bool pipelined = false;
  int extra = 0;
  uint64_t seed = 0;
};

TableRow make_row(const GridPoint& g, Cdfg graph, const TableBudget& budget) {
  ProblemBundle b = make_problem(std::move(graph), g.steps, g.pipelined,
                                 g.extra);
  const Comparison cmp = run_budget_comparison(*b.problem, g.seed, budget);
  TableRow row;
  row.steps = g.steps;
  row.pipelined = g.pipelined;
  row.alus = b.fus.alu;
  row.muls = b.fus.mul;
  row.regs = b.min_regs + g.extra;
  row.traditional_feasible = cmp.traditional_feasible;
  row.salsa_muxes = cmp.salsa.cost.muxes;
  row.salsa_merged = cmp.salsa.merging.muxes_after;
  row.winner = "salsa";
  if (cmp.traditional_feasible) {
    row.trad_muxes = cmp.traditional.cost.muxes;
    row.trad_merged = cmp.traditional.merging.muxes_after;
    row.winner = row.salsa_merged < row.trad_merged   ? "salsa"
                 : row.salsa_merged == row.trad_merged ? "tie"
                                                       : "trad";
  }
  return row;
}

}  // namespace

Comparison run_comparison(const AllocProblem& prob, uint64_t seed) {
  return run_budget_comparison(prob, seed, TableBudget{});
}

namespace {

// The committed walls (BENCH_throughput.json, BENCH_scaling.json) must come
// from clean trees: a "-dirty" stamp means the record measures uncommitted
// code against a committed baseline. The record is still written — local
// iteration needs it — but loudly, so a dirty record is never committed by
// accident.
void warn_if_dirty_tree(const std::string& git_version,
                        const std::string& path) {
  if (git_version.find("-dirty") == std::string::npos) return;
  std::fprintf(stderr,
               "WARNING: %s was produced by a dirty tree (%s); do not commit "
               "this record — regenerate from a clean checkout.\n",
               path.c_str(), git_version.c_str());
}

}  // namespace

std::vector<TableRow> table2_rows(const TableBudget& budget,
                                  Parallelism parallelism) {
  struct Sched {
    int steps;
    bool pipelined;
  };
  const Sched scheds[] = {{17, false}, {17, true}, {19, false}, {19, true},
                          {21, false}};
  std::vector<GridPoint> grid;
  for (const Sched& s : scheds)
    for (int extra = 0; extra <= 2; ++extra)
      grid.push_back({s.steps, s.pipelined, extra,
                      1000 + static_cast<uint64_t>(s.steps * 10 + extra)});
  return parallel_map(parallelism, static_cast<int>(grid.size()), [&](int i) {
    return make_row(grid[static_cast<size_t>(i)], make_ewf(), budget);
  });
}

std::vector<TableRow> table3_rows(const TableBudget& budget,
                                  Parallelism parallelism) {
  std::vector<GridPoint> grid;
  for (const int steps : {7, 9, 11, 13})
    for (const int extra : {0, 2})
      grid.push_back({steps, false, extra,
                      3000 + static_cast<uint64_t>(steps * 10 + extra)});
  return parallel_map(parallelism, static_cast<int>(grid.size()), [&](int i) {
    return make_row(grid[static_cast<size_t>(i)], make_dct(), budget);
  });
}

std::string git_describe(std::string fallback) {
  FILE* pipe = popen("git describe --always --dirty --tags 2>/dev/null", "r");
  if (pipe == nullptr) return fallback;
  std::string out;
  char buf[256];
  while (fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  const int rc = pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  if (rc != 0 || out.empty()) return fallback;
  return out;
}

void write_throughput_json(const std::string& path,
                           const std::vector<ThroughputRow>& rows,
                           const std::string& git_version) {
  warn_if_dirty_tree(git_version, path);
  std::ofstream os(path);
  SALSA_CHECK_MSG(os.good(), "cannot open throughput record " + path);
  os << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.10g", r.moves_per_sec);
    os << "  {\"benchmark\": \"" << r.benchmark
       << "\", \"moves_per_sec\": " << rate << ", \"threads\": " << r.threads
       << ", \"k\": " << r.k << ", \"git\": \"" << git_version << "\"}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
  os.close();
  SALSA_CHECK_MSG(os.good(), "failed writing throughput record " + path);
}

void write_scaling_json(const std::string& path,
                        const std::vector<ScalingRow>& rows,
                        const std::string& git_version) {
  warn_if_dirty_tree(git_version, path);
  std::ofstream os(path);
  SALSA_CHECK_MSG(os.good(), "cannot open scaling record " + path);
  os << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    char rate[32], ns[32], rss[32];
    std::snprintf(rate, sizeof rate, "%.10g", r.moves_per_sec);
    std::snprintf(ns, sizeof ns, "%.10g",
                  r.moves_per_sec > 0 ? 1e9 / r.moves_per_sec : 0.0);
    std::snprintf(rss, sizeof rss, "%.10g", r.peak_rss_mb);
    os << "  {\"benchmark\": \"" << r.benchmark << "\", \"family\": \""
       << r.family << "\", \"ops\": " << r.ops << ", \"length\": " << r.length
       << ", \"regs\": " << r.regs << ", \"moves_per_sec\": " << rate
       << ", \"ns_per_move\": " << ns << ", \"peak_rss_mb\": " << rss
       << ", \"git\": \"" << git_version << "\"}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
  os.close();
  SALSA_CHECK_MSG(os.good(), "failed writing scaling record " + path);
}

}  // namespace salsa::benchharness
