#include "bench_suite/diffeq.h"

namespace salsa {

Cdfg make_diffeq() {
  Cdfg g("diffeq");
  const ValueId x = g.add_input("x");
  const ValueId y = g.add_input("y");
  const ValueId u = g.add_input("u");
  const ValueId dx = g.add_input("dx");
  const ValueId three = g.add_const(3, "three");

  const ValueId m1 = g.add_op(OpKind::kMul, three, x, "3x");
  const ValueId m2 = g.add_op(OpKind::kMul, m1, u, "3xu");
  const ValueId m3 = g.add_op(OpKind::kMul, m2, dx, "3xudx");
  const ValueId m4 = g.add_op(OpKind::kMul, three, y, "3y");
  const ValueId m5 = g.add_op(OpKind::kMul, m4, dx, "3ydx");
  const ValueId m6 = g.add_op(OpKind::kMul, u, dx, "udx");
  const ValueId s1 = g.add_op(OpKind::kSub, u, m3, "u-3xudx");
  const ValueId u1 = g.add_op(OpKind::kSub, s1, m5, "u1");
  const ValueId x1 = g.add_op(OpKind::kAdd, x, dx, "x1");
  const ValueId y1 = g.add_op(OpKind::kAdd, y, m6, "y1");

  g.add_output(x1, "x_out");
  g.add_output(y1, "y_out");
  g.add_output(u1, "u_out");
  g.validate();
  return g;
}

}  // namespace salsa
