#include "bench_suite/random_cdfg.h"

#include <algorithm>

#include "util/rng.h"
#include "util/strings.h"

namespace salsa {

namespace {

// True if any node in `targets` is reachable from `from` along data edges.
bool reaches_any(const Cdfg& g, NodeId from, const std::vector<NodeId>& targets) {
  std::vector<bool> seen(static_cast<size_t>(g.num_nodes()), false);
  std::vector<NodeId> stack{from};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (seen[static_cast<size_t>(n)]) continue;
    seen[static_cast<size_t>(n)] = true;
    if (std::find(targets.begin(), targets.end(), n) != targets.end())
      return true;
    if (g.node(n).out == kInvalidId) continue;
    for (NodeId c : g.value(g.node(n).out).consumers) stack.push_back(c);
  }
  return false;
}

}  // namespace

Cdfg make_random_cdfg(const RandomCdfgParams& p) {
  SALSA_CHECK_MSG(p.num_ops >= p.num_states + 1,
                  "need at least one op per state plus one");
  Rng rng(p.seed);
  Cdfg g("random_" + std::to_string(p.seed));

  std::vector<ValueId> pool;  // candidate operands
  std::vector<ValueId> states;
  for (int i = 0; i < p.num_inputs; ++i)
    pool.push_back(g.add_input("in" + std::to_string(i)));
  for (int i = 0; i < p.num_consts; ++i)
    pool.push_back(g.add_const(rng.range(-9, 9), numbered("k", i)));
  for (int i = 0; i < p.num_states; ++i) {
    const ValueId s = g.add_state("st" + std::to_string(i));
    states.push_back(s);
    pool.push_back(s);
  }
  if (pool.empty()) pool.push_back(g.add_input("in0"));

  std::vector<ValueId> computed;
  for (int i = 0; i < p.num_ops; ++i) {
    OpKind kind = OpKind::kAdd;
    const double roll = rng.uniform01();
    if (roll < p.mul_frac) {
      kind = OpKind::kMul;
    } else if (roll < p.mul_frac + p.sub_frac) {
      kind = OpKind::kSub;
    }
    // The first ops consume the states so every state is read.
    ValueId a, bb;
    if (i < p.num_states) {
      a = states[static_cast<size_t>(i)];
      bb = pool[static_cast<size_t>(rng.uniform(static_cast<int>(pool.size())))];
    } else {
      a = pool[static_cast<size_t>(rng.uniform(static_cast<int>(pool.size())))];
      bb = pool[static_cast<size_t>(rng.uniform(static_cast<int>(pool.size())))];
    }
    const ValueId v = g.add_op(kind, a, bb, "op" + std::to_string(i));
    computed.push_back(v);
    pool.push_back(v);
  }

  // Rewire each state to a computed value that cannot reach any of the
  // state's readers (keeps the anti-dependence satisfiable).
  std::vector<ValueId> used_next;
  for (ValueId s : states) {
    const std::vector<NodeId> readers = g.value(s).consumers;
    ValueId next = kInvalidId;
    for (auto it = computed.rbegin(); it != computed.rend(); ++it) {
      // A value may feed only one state: merged-state storages cannot carry
      // two distinct initial contents.
      if (std::find(used_next.begin(), used_next.end(), *it) !=
          used_next.end())
        continue;
      if (!reaches_any(g, g.producer(*it), readers)) {
        next = *it;
        break;
      }
    }
    if (next == kInvalidId) {
      // Synthesize a fresh combiner of two late values; it reaches nothing.
      const ValueId a = computed.back();
      const ValueId bb =
          computed[static_cast<size_t>(rng.uniform(
              static_cast<int>(computed.size())))];
      next = g.add_op(OpKind::kAdd, a, bb, "stfix" + std::to_string(s));
      computed.push_back(next);
    }
    used_next.push_back(next);
    g.set_state_next(s, next);
  }

  // Every unconsumed computed value becomes an output.
  int outs = 0;
  for (ValueId v : computed)
    if (g.value(v).consumers.empty()) {
      bool is_state_next = false;
      for (NodeId sn : g.state_nodes())
        if (g.node(sn).state_next == v) is_state_next = true;
      if (!is_state_next) g.add_output(v, "out" + std::to_string(outs++));
    }
  if (outs == 0 && !computed.empty()) g.add_output(computed.back(), "out0");

  g.validate();
  return g;
}

}  // namespace salsa
