// Verilog testbench generation: wraps the emitted datapath module in a
// self-checking testbench whose stimulus and expected outputs come from the
// behavioural evaluator, so the RTL can be validated end-to-end in any
// external Verilog simulator.
#pragma once

#include <span>
#include <string>

#include "datapath/netlist.h"

namespace salsa {

/// Emits a testbench module `<module_name>_tb` that instantiates
/// `module_name` (as produced by to_verilog with the same netlist), drives
/// `iterations` iterations of the given input streams, and $display-checks
/// every output against the behavioural reference. Finishes with "TB PASS"
/// or "TB FAIL".
std::string to_testbench(const Netlist& nl,
                         std::span<const std::vector<int64_t>> inputs,
                         std::span<const int64_t> initial_states,
                         int iterations, const std::string& module_name,
                         int width = 16);

}  // namespace salsa
