#include "datapath/netlist.h"

#include <algorithm>

#include "core/verify.h"

namespace salsa {

Netlist::Netlist(const Binding& b) : b_(b) {
  check_legal(b);
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const Schedule& sched = prob.sched();

  std::vector<std::pair<uint64_t, uint64_t>> distinct;
  for (const ConnUse& u : connection_uses(b)) {
    route_.emplace(std::make_pair(key_of(u.sink), u.step), u.src);
    if (u.src.kind != Endpoint::Kind::kConstPort)
      distinct.emplace_back(key_of(u.sink), key_of(u.src));
    if (u.sink.kind == Pin::Kind::kRegIn)
      reg_loads_.push_back(RegLoad{u.sink.id, u.src, u.step});
    if (u.sink.kind == Pin::Kind::kOutPort) {
      SALSA_CHECK(u.src.kind == Endpoint::Kind::kRegOut);
      out_samples_.push_back(OutSample{u.sink.id, u.src.id, u.step});
    }
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  connections_ = static_cast<int>(distinct.size());

  for (NodeId n : g.operations())
    fu_actions_.push_back(FuAction{n, b.op(n).fu, sched.start(n)});

  muxes_ = merge_muxes(b);
}

std::optional<Endpoint> Netlist::source_of(const Pin& pin, int step) const {
  const auto it = route_.find(std::make_pair(key_of(pin), step));
  if (it == route_.end()) return std::nullopt;
  return it->second;
}

}  // namespace salsa
