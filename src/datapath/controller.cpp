#include "datapath/controller.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace salsa {

namespace {

int bits_for(int choices) {
  int bits = 0;
  while ((1 << bits) < choices) ++bits;
  return bits;
}

// The control word of one step: per pin the selected source key (or absent),
// per register whether it loads, per FU which op kind starts.
struct Word {
  std::map<uint64_t, uint64_t> pin_select;
  std::set<int> reg_loads;
  std::map<int, int> fu_op;  // fu -> op kind ordinal

  bool operator<(const Word& o) const {
    if (pin_select != o.pin_select) return pin_select < o.pin_select;
    if (reg_loads != o.reg_loads) return reg_loads < o.reg_loads;
    return fu_op < o.fu_op;
  }
};

std::vector<Word> control_words(const Netlist& nl) {
  const Binding& b = nl.binding();
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const int L = prob.sched().length();
  std::vector<Word> words(static_cast<size_t>(L));
  for (int t = 0; t < L; ++t) {
    Word& w = words[static_cast<size_t>(t)];
    for (FuId f = 0; f < prob.fus().size(); ++f) {
      for (int slot = 0; slot < 2; ++slot) {
        const Pin pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1, f};
        if (auto src = nl.source_of(pin, t)) w.pin_select[key_of(pin)] = key_of(*src);
      }
    }
    for (const RegLoad& ld : nl.reg_loads())
      if (ld.step == t) w.reg_loads.insert(ld.reg);
    for (const FuAction& a : nl.fu_actions())
      if (a.step == t)
        w.fu_op[a.fu] = static_cast<int>(g.node(a.node).kind);
  }
  return words;
}

}  // namespace

ControllerStats analyze_controller(const Netlist& nl) {
  const Binding& b = nl.binding();
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const int L = prob.sched().length();
  ControllerStats stats;

  // Mux select bits per pin: distinct sources over all steps.
  std::map<uint64_t, std::set<uint64_t>> pin_sources;
  for (int t = 0; t < L; ++t) {
    for (FuId f = 0; f < prob.fus().size(); ++f)
      for (int slot = 0; slot < 2; ++slot) {
        const Pin pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1, f};
        if (auto src = nl.source_of(pin, t))
          pin_sources[key_of(pin)].insert(key_of(*src));
      }
    for (const RegLoad& ld : nl.reg_loads())
      if (ld.step == t)
        pin_sources[key_of(Pin{Pin::Kind::kRegIn, ld.reg})].insert(
            key_of(ld.src));
  }
  for (const auto& [pin, sources] : pin_sources) {
    (void)pin;
    stats.mux_select_bits += bits_for(static_cast<int>(sources.size()));
  }

  std::set<int> loading_regs;
  for (const RegLoad& ld : nl.reg_loads()) loading_regs.insert(ld.reg);
  stats.reg_enable_bits = static_cast<int>(loading_regs.size());

  // FU op-select bits: distinct operation kinds (plus the idle/pass state
  // for pass-capable units that perform at least one pass-through).
  std::map<FuId, std::set<int>> fu_kinds;
  for (const FuAction& a : nl.fu_actions())
    fu_kinds[a.fu].insert(static_cast<int>(g.node(a.node).kind));
  const Lifetimes& lt = prob.lifetimes();
  for (int sid = 0; sid < lt.num_storages(); ++sid)
    for (const auto& seg : b.sto(sid).cells)
      for (const Cell& c : seg)
        if (c.via != kInvalidId)
          fu_kinds[c.via].insert(static_cast<int>(OpKind::kNop));
  for (const auto& [fu, kinds] : fu_kinds) {
    (void)fu;
    stats.fu_select_bits += bits_for(static_cast<int>(kinds.size()));
  }

  const auto words = control_words(nl);
  std::set<Word> distinct(words.begin(), words.end());
  stats.distinct_words = static_cast<int>(distinct.size());
  for (const Word& w : words)
    if (w.fu_op.empty() && w.reg_loads.empty()) ++stats.idle_steps;
  return stats;
}

std::string controller_table(const Netlist& nl) {
  const Binding& b = nl.binding();
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const int L = prob.sched().length();
  std::ostringstream os;
  for (int t = 0; t < L; ++t) {
    os << "step " << t << ":";
    for (const FuAction& a : nl.fu_actions())
      if (a.step == t)
        os << " " << prob.fus().fu(a.fu).name << "="
           << g.node(a.node).name;
    bool first_load = true;
    for (const RegLoad& ld : nl.reg_loads()) {
      if (ld.step != t) continue;
      os << (first_load ? " load:" : ",") << " R" << ld.reg;
      first_load = false;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace salsa
