#include "datapath/simulator.h"

#include <sstream>

#include "cdfg/eval.h"
#include "util/rng.h"

namespace salsa {

namespace {

/// Execution state of the datapath.
struct Machine {
  std::vector<int64_t> regs;        // current register contents
  std::vector<int64_t> fu_result;   // result present at each FU output "now"
  std::vector<bool> fu_has_result;  // whether fu_result is meaningful
};

}  // namespace

std::vector<int64_t> initial_register_image(
    const Netlist& nl, std::span<const std::vector<int64_t>> inputs,
    std::span<const int64_t> initial_states) {
  const Binding& b = nl.binding();
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();

  const auto state_nodes = g.state_nodes();
  const auto input_nodes = g.input_nodes();
  std::vector<int64_t> states(state_nodes.size(), 0);
  if (!initial_states.empty()) {
    SALSA_CHECK(initial_states.size() == state_nodes.size());
    states.assign(initial_states.begin(), initial_states.end());
  }
  auto input_index = [&](NodeId n) {
    for (size_t i = 0; i < input_nodes.size(); ++i)
      if (input_nodes[i] == n) return static_cast<int>(i);
    fail("unknown input node");
  };
  auto state_index = [&](int sid) -> int {
    for (ValueId v : lt.storage(sid).members) {
      const NodeId p = g.producer(v);
      if (g.node(p).kind == OpKind::kState)
        for (size_t i = 0; i < state_nodes.size(); ++i)
          if (state_nodes[i] == p) return static_cast<int>(i);
    }
    return -1;
  };

  std::vector<int64_t> regs(static_cast<size_t>(prob.num_regs()), 0);

  // Preload: cells occupying step 0 were written "before time zero" — they
  // hold initial states, iteration-0 inputs, or junk (dead values).
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const Storage& s = lt.storage(sid);
    const int seg = lt.seg_at_step(sid, 0);
    if (seg < 0) continue;
    int64_t v = 0;
    const int sx = state_index(sid);
    if (sx >= 0) {
      v = states[static_cast<size_t>(sx)];
    } else if (s.producer == kInvalidId) {
      SALSA_CHECK(!inputs.empty());
      v = inputs[0][static_cast<size_t>(
          input_index(g.producer(s.members[0])))];
    } else if (!s.wraps && s.birth == 0) {
      // Non-state value born at the boundary: produced by iteration -1,
      // never read before being rewritten; zero is fine.
      v = 0;
    } else {
      continue;  // storage born later this iteration; no preload needed
    }
    for (const Cell& c : b.sto(sid).cells[static_cast<size_t>(seg)])
      regs[static_cast<size_t>(c.reg)] = v;
  }
  return regs;
}

SimResult simulate(const Netlist& nl,
                   std::span<const std::vector<int64_t>> inputs,
                   std::span<const int64_t> initial_states, int iterations,
                   SimTrace* trace) {
  const Binding& b = nl.binding();
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const Schedule& sched = prob.sched();
  const int L = sched.length();

  SALSA_CHECK_MSG(static_cast<int>(inputs.size()) >= iterations,
                  "simulate: not enough input vectors");
  const auto input_nodes = g.input_nodes();
  const auto output_nodes = g.output_nodes();
  auto input_index = [&](NodeId n) {
    for (size_t i = 0; i < input_nodes.size(); ++i)
      if (input_nodes[i] == n) return static_cast<int>(i);
    fail("unknown input node");
  };

  Machine m;
  m.regs = initial_register_image(nl, inputs, initial_states);
  m.fu_result.assign(static_cast<size_t>(prob.fus().size()), 0);
  m.fu_has_result.assign(static_cast<size_t>(prob.fus().size()), false);

  // Multi-cycle operations in flight: (finish step global, fu, value).
  struct Pending {
    long finish;  // global step at whose end the result lands at the FU output
    FuId fu;
    int64_t value;
  };
  std::vector<Pending> pending;

  auto read_endpoint = [&](const Endpoint& e, const Machine& mm,
                           long gstep) -> int64_t {
    switch (e.kind) {
      case Endpoint::Kind::kRegOut:
        return mm.regs[static_cast<size_t>(e.id)];
      case Endpoint::Kind::kConstPort:
        return g.node(e.id).cvalue;
      case Endpoint::Kind::kInPort: {
        // Input port carries the *next* iteration's value at the boundary
        // load (step L-1) — see the connection enumeration.
        const long iter = gstep / L + 1;
        SALSA_CHECK(iter < static_cast<long>(inputs.size()));
        return inputs[static_cast<size_t>(iter)]
                     [static_cast<size_t>(input_index(e.id))];
      }
      case Endpoint::Kind::kFuOut: {
        SALSA_CHECK_MSG(mm.fu_has_result[static_cast<size_t>(e.id)],
                        "FU output read while no result is present");
        return mm.fu_result[static_cast<size_t>(e.id)];
      }
    }
    fail("bad endpoint");
  };

  SimResult result;
  result.outputs.assign(static_cast<size_t>(iterations), {});
  for (auto& o : result.outputs) o.assign(output_nodes.size(), 0);

  for (long gstep = 0; gstep < static_cast<long>(iterations) * L; ++gstep) {
    const int t = static_cast<int>(gstep % L);
    const long iter = gstep / L;

    // Phase 1: operations starting now read their input pins and compute.
    for (const FuAction& a : nl.fu_actions()) {
      if (a.step != t) continue;
      const Node& nd = g.node(a.node);
      auto in_val = [&](int slot) {
        const Pin pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1,
                      a.fu};
        const auto src = nl.source_of(pin, t);
        SALSA_CHECK_MSG(src.has_value(), "operand pin has no route");
        return read_endpoint(*src, m, gstep);
      };
      // A set swap flag exchanges the pins of a commutative operation, so
      // computing on the pins directly is always correct.
      const int64_t value = nd.kind == OpKind::kNop
                                ? in_val(0)
                                : apply_op(nd.kind, in_val(0), in_val(1));
      const int d = sched.hw().delay(nd.kind);
      pending.push_back(Pending{gstep + d - 1, a.fu, value});
    }

    // Phase 2: results landing at FU outputs at the end of this step.
    std::vector<bool> fresh(m.fu_has_result.size(), false);
    std::vector<int64_t> fresh_val(m.fu_result.size(), 0);
    for (size_t i = 0; i < pending.size();) {
      if (pending[i].finish == gstep) {
        fresh[static_cast<size_t>(pending[i].fu)] = true;
        fresh_val[static_cast<size_t>(pending[i].fu)] = pending[i].value;
        pending[i] = pending.back();
        pending.pop_back();
      } else {
        ++i;
      }
    }
    // Pass-throughs forward pin 0 combinationally during this step.
    for (FuId f = 0; f < prob.fus().size(); ++f) {
      if (fresh[static_cast<size_t>(f)]) continue;
      bool executing = false;
      for (const FuAction& a : nl.fu_actions()) {
        const int occ = sched.hw().occupancy(g.node(a.node).kind);
        if (a.fu == f && t >= a.step && t < a.step + occ) {
          executing = true;
          break;
        }
      }
      if (executing) continue;
      const auto src = nl.source_of(Pin{Pin::Kind::kFuIn0, f}, t);
      if (src.has_value()) {
        fresh[static_cast<size_t>(f)] = true;
        fresh_val[static_cast<size_t>(f)] = read_endpoint(*src, m, gstep);
      }
    }

    // Phase 3: output ports sample during this step (before the edge).
    for (const OutSample& o : nl.out_samples())
      if (o.step == t) {
        size_t k = 0;
        while (output_nodes[k] != o.node) ++k;
        result.outputs[static_cast<size_t>(iter)][k] =
            m.regs[static_cast<size_t>(o.reg)];
      }

    // Phase 4: register loads at the end of the step. All sources are read
    // against the pre-edge machine state, with FU outputs taking the values
    // that land at this edge.
    Machine pre = m;
    for (size_t f = 0; f < fresh.size(); ++f) {
      if (fresh[f]) {
        pre.fu_has_result[f] = true;
        pre.fu_result[f] = fresh_val[f];
      }
    }
    for (const RegLoad& ld : nl.reg_loads()) {
      if (ld.step != t) continue;
      if (ld.src.kind == Endpoint::Kind::kInPort &&
          iter + 1 >= static_cast<long>(inputs.size()))
        continue;  // past the last provided iteration
      m.regs[static_cast<size_t>(ld.reg)] = read_endpoint(ld.src, pre, gstep);
    }
    m.fu_has_result = pre.fu_has_result;
    m.fu_result = pre.fu_result;
    if (trace != nullptr) trace->regs.push_back(m.regs);
  }
  return result;
}

std::string compare_with_reference(const Netlist& nl,
                                   std::span<const std::vector<int64_t>> inputs,
                                   std::span<const int64_t> initial_states,
                                   int iterations) {
  const Cdfg& g = nl.binding().prob().cdfg();
  Evaluator ref(g, initial_states);
  SimResult hw = simulate(nl, inputs, initial_states, iterations);
  for (int i = 0; i < iterations; ++i) {
    const auto want = ref.step(inputs[static_cast<size_t>(i)]);
    const auto& got = hw.outputs[static_cast<size_t>(i)];
    for (size_t k = 0; k < want.size(); ++k) {
      if (want[k] != got[k]) {
        std::ostringstream os;
        os << "iteration " << i << ", output '"
           << g.node(g.output_nodes()[k]).name << "': datapath=" << got[k]
           << " reference=" << want[k];
        return os.str();
      }
    }
  }
  return {};
}

std::string random_equivalence_check(const Netlist& nl, int iterations,
                                     uint64_t seed) {
  const Cdfg& g = nl.binding().prob().cdfg();
  Rng rng(seed);
  auto rnd = [&] {
    return static_cast<int64_t>(rng.next() % 2001) - 1000;
  };
  std::vector<std::vector<int64_t>> inputs(
      static_cast<size_t>(iterations) + 1,
      std::vector<int64_t>(g.input_nodes().size(), 0));
  for (auto& vec : inputs)
    for (auto& v : vec) v = rnd();
  std::vector<int64_t> states(g.state_nodes().size(), 0);
  for (auto& v : states) v = rnd();
  return compare_with_reference(nl, inputs, states, iterations);
}

}  // namespace salsa
