// Memory/LSU components on the event-driven simulation kernel: blocking
// load/store units issue per-unit transaction programs to a single-port RAM
// with configurable access latency over ready/valid channels
// (datapath/ready_valid.h). Only components whose channels moved (or whose
// access timer expires) re-evaluate; a RAM waiting out a long latency costs
// one event, not latency-many cycles of rescanning.
//
// The transaction programs come from the datapath: a memory-traffic design
// (frontend/generate.h, GenFamily::kMemoryTraffic) computes (addr, data)
// output streams under the netlist controller, and mem_ops_from_outputs()
// turns those sampled outputs into LSU programs — the controller drives the
// memory subsystem through its output ports.
//
// The differential contract mirrors the engine pair: diff_memory_sim() runs
// the cycle-accurate subsystem against magic_memory_loads(), a zero-latency
// behavioural memory replaying the same transactions, and requires identical
// load streams plus transaction conservation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "datapath/simulator.h"

namespace salsa {

/// One memory transaction: a store of `data` to `addr`, or a load from
/// `addr` (data ignored).
struct MemOp {
  bool write = false;
  int64_t addr = 0;
  int64_t data = 0;
};

struct MemSimStats {
  long cycles = 0;     ///< total cycles until every program drained
  long events = 0;     ///< component evaluations executed
  long heap_peak = 0;  ///< max simultaneous pending events
};

struct MemSimResult {
  /// loads[u] — values returned to LSU u's loads, in program order.
  std::vector<std::vector<int64_t>> loads;
  /// accepted transaction order at the RAM port: (lsu, program index).
  std::vector<std::pair<int, int>> port_order;
  MemSimStats stats;
};

/// Runs one program per LSU against a shared single-port RAM.
/// `ram_latency` >= 1 cycles from request accept to response; unwritten
/// addresses read as 0. LSUs are blocking (one outstanding transaction);
/// the RAM arbitrates lowest-index-first among pending requests and exerts
/// backpressure when its response channel stalls.
MemSimResult simulate_memory(std::span<const std::vector<MemOp>> programs,
                             int ram_latency);

/// Behavioural reference: applies `ops` to a flat map in the given order and
/// returns each load's value (zero-latency "magic" memory).
std::vector<int64_t> magic_memory_loads(std::span<const MemOp> ops);

/// Differential check: simulates the subsystem, then replays the accepted
/// port order through the magic memory and compares every load value, plus
/// per-LSU program-order load streams for the single-LSU case (where the
/// port order is the program order by construction). Returns "" when
/// equivalent, else the first divergence.
std::string diff_memory_sim(std::span<const std::vector<MemOp>> programs,
                            int ram_latency);

/// Adapts sampled datapath outputs (SimResult::outputs) into an LSU program:
/// output k=2j is the address and k=2j+1 the data of stream j; even
/// iterations store, odd iterations load (so every stream exercises both).
/// Addresses are masked into [0, addr_space).
std::vector<std::vector<MemOp>> mem_ops_from_outputs(
    const SimResult& outputs, int64_t addr_space);

}  // namespace salsa
