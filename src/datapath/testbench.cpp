#include "datapath/testbench.h"

#include <cctype>
#include <sstream>

#include "cdfg/eval.h"

namespace salsa {

namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name)
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c : '_';
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
    out = "n_" + out;
  return out;
}

}  // namespace

std::string to_testbench(const Netlist& nl,
                         std::span<const std::vector<int64_t>> inputs,
                         std::span<const int64_t> initial_states,
                         int iterations, const std::string& module_name,
                         int width) {
  const Binding& b = nl.binding();
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  const int L = prob.sched().length();
  SALSA_CHECK_MSG(static_cast<int>(inputs.size()) >= iterations + 1,
                  "testbench needs iterations+1 input vectors (boundary load)");

  // Reference outputs, masked to the module width by the $display checks.
  Evaluator ref(g, initial_states);
  std::vector<std::vector<int64_t>> expected;
  for (int i = 0; i < iterations; ++i)
    expected.push_back(ref.step(inputs[static_cast<size_t>(i)]));

  const auto in_nodes = g.input_nodes();
  const auto out_nodes = g.output_nodes();
  const std::string mod = sanitize(module_name);
  std::ostringstream os;
  os << "// Self-checking testbench for " << mod
     << " — stimulus and expected values from the behavioural evaluator.\n"
     << "`timescale 1ns/1ns\n"
     << "module " << mod << "_tb;\n"
     << "  localparam W = " << width << ";\n"
     << "  reg clk = 0, rst = 1;\n"
     << "  always #5 clk = ~clk;\n";
  for (NodeId n : in_nodes)
    os << "  reg [W-1:0] in_" << sanitize(g.node(n).name) << ";\n";
  for (NodeId n : out_nodes)
    os << "  wire [W-1:0] out_" << sanitize(g.node(n).name) << ";\n";

  os << "  " << mod << " #(.W(W)) dut(.clk(clk), .rst(rst)";
  for (NodeId n : in_nodes) {
    const std::string s = sanitize(g.node(n).name);
    os << ", .in_" << s << "(in_" << s << ")";
  }
  for (NodeId n : out_nodes) {
    const std::string s = sanitize(g.node(n).name);
    os << ", .out_" << s << "(out_" << s << ")";
  }
  os << ");\n\n";

  // Stimulus and expected-value memories.
  os << "  reg [63:0] stim [0:" << iterations << "][0:"
     << (in_nodes.empty() ? 0 : in_nodes.size() - 1) << "];\n";
  os << "  reg [63:0] expect_mem [0:" << iterations - 1 << "][0:"
     << (out_nodes.empty() ? 0 : out_nodes.size() - 1) << "];\n";
  os << "  integer errors = 0;\n  integer cycle = 0;\n\n  initial begin\n";
  for (int i = 0; i <= iterations; ++i)
    for (size_t k = 0; k < in_nodes.size(); ++k)
      os << "    stim[" << i << "][" << k << "] = 64'd"
         << static_cast<uint64_t>(inputs[static_cast<size_t>(i)][k]) << ";\n";
  for (int i = 0; i < iterations; ++i)
    for (size_t k = 0; k < out_nodes.size(); ++k)
      os << "    expect_mem[" << i << "][" << k << "] = 64'd"
         << static_cast<uint64_t>(expected[static_cast<size_t>(i)][k])
         << ";\n";
  // Preload the registers holding step-0 cells (states / first inputs) —
  // the datapath assumes them written "before time zero".
  auto state_value = [&](int sid) -> std::pair<bool, int64_t> {
    const auto states = g.state_nodes();
    for (ValueId v : lt.storage(sid).members) {
      const NodeId p = g.producer(v);
      if (g.node(p).kind != OpKind::kState) continue;
      for (size_t i = 0; i < states.size(); ++i)
        if (states[i] == p)
          return {true, initial_states.empty() ? 0 : initial_states[i]};
    }
    return {false, 0};
  };
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const int seg = lt.seg_at_step(sid, 0);
    if (seg < 0) continue;
    const Storage& s = lt.storage(sid);
    int64_t v = 0;
    if (const auto [is_state, sv] = state_value(sid); is_state) {
      v = sv;
    } else if (s.producer == kInvalidId) {
      size_t idx = 0;
      for (size_t i = 0; i < in_nodes.size(); ++i)
        if (in_nodes[i] == g.producer(s.members[0])) idx = i;
      v = inputs[0][idx];
    } else {
      continue;
    }
    for (const Cell& c : b.sto(sid).cells[static_cast<size_t>(seg)])
      os << "    dut.r" << c.reg << " = 64'd" << static_cast<uint64_t>(v)
         << ";\n";
  }
  os << "    @(posedge clk);\n    #1 rst = 0;\n  end\n\n";

  // Drive inputs per cycle: the ports are sampled at the boundary (step "
  os << "  always @(posedge clk) if (!rst) cycle <= cycle + 1;\n"
     << "  wire [15:0] t = cycle % " << L << ";\n"
     << "  wire [31:0] iter = cycle / " << L << ";\n";
  for (size_t k = 0; k < in_nodes.size(); ++k) {
    const std::string s = sanitize(g.node(in_nodes[k]).name);
    os << "  always @(*) in_" << s << " = (t == " << L - 1
       << ") ? stim[iter+1][" << k << "][W-1:0] : stim[iter][" << k
       << "][W-1:0];\n";
  }
  os << "\n  // Checks: each output register is compared one cycle after "
        "its sample step.\n";
  os << "  always @(posedge clk) begin\n    if (!rst) begin\n";
  for (const OutSample& o : nl.out_samples()) {
    size_t k = 0;
    const auto outs = g.output_nodes();
    while (outs[k] != o.node) ++k;
    const std::string s = sanitize(g.node(o.node).name);
    os << "      if (t == " << o.step << " && iter < " << iterations
       << ") begin\n"
       << "        #2;\n"
       << "        if (out_" << s << " !== expect_mem[iter][" << k
       << "][W-1:0]) begin\n"
       << "          $display(\"MISMATCH iter=%0d out_" << s
       << "=%0d expected=%0d\", iter, out_" << s << ", expect_mem[iter][" << k
       << "][W-1:0]);\n"
       << "          errors = errors + 1;\n        end\n      end\n";
  }
  os << "    end\n  end\n\n";
  os << "  initial begin\n    #" << (iterations * L + 4) * 10 << ";\n"
     << "    if (errors == 0) $display(\"TB PASS\");\n"
     << "    else $display(\"TB FAIL: %0d mismatches\", errors);\n"
     << "    $finish;\n  end\nendmodule\n";
  return os.str();
}

}  // namespace salsa
