// Cycle-accurate simulation of an allocated datapath. The simulator executes
// the netlist's routing tables step by step — registers latch at step edges,
// FUs read their input pins at operation start and deliver results after
// their delay, pass-throughs forward pin 0 — and samples the output ports.
// Comparing the streams against cdfg/eval.h on random stimuli is the
// project's dynamic correctness check for allocations.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "datapath/netlist.h"

namespace salsa {

struct SimResult {
  /// outputs[iteration][k] — k-th output node (order of cdfg.output_nodes()).
  std::vector<std::vector<int64_t>> outputs;
};

/// Optional cycle trace: register contents at the end of every global step
/// (after the step-edge latches). Feed to datapath/vcd.h for waveforms.
struct SimTrace {
  /// regs[gstep][r] — register r after the edge ending global step gstep.
  std::vector<std::vector<int64_t>> regs;
};

/// Which simulation engine to run. kFullEval is the always-reevaluate
/// reference (this file); kEventDriven is the event-queue engine
/// (datapath/event_sim.h). Both produce identical results by contract.
enum class SimEngine { kFullEval, kEventDriven };

/// The register image "before time zero": cells occupying step 0 hold
/// initial states, iteration-0 inputs, or zeros (boundary-born dead values).
/// Shared input boundary of both simulation engines so the differential
/// contract starts from one well-defined state.
std::vector<int64_t> initial_register_image(
    const Netlist& nl, std::span<const std::vector<int64_t>> inputs,
    std::span<const int64_t> initial_states);

/// Simulates `iterations` loop iterations. `inputs[i]` provides the input
/// values of iteration i (order of cdfg.input_nodes()); `initial_states`
/// seeds the state nodes (order of cdfg.state_nodes(); empty = zeros).
/// When `trace` is non-null, per-step register snapshots are recorded.
SimResult simulate(const Netlist& nl,
                   std::span<const std::vector<int64_t>> inputs,
                   std::span<const int64_t> initial_states, int iterations,
                   SimTrace* trace = nullptr);

/// Runs the datapath against the behavioural evaluator on the same stimuli.
/// Returns an empty string when all output streams match, else a
/// description of the first mismatch. For loop designs the first
/// `pipeline_slack` iterations... (none here: the schedule is non-overlapped,
/// so streams must match from iteration 0).
std::string compare_with_reference(const Netlist& nl,
                                   std::span<const std::vector<int64_t>> inputs,
                                   std::span<const int64_t> initial_states,
                                   int iterations);

/// Convenience: random-stimulus equivalence check.
std::string random_equivalence_check(const Netlist& nl, int iterations,
                                     uint64_t seed);

}  // namespace salsa
