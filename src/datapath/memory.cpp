#include "datapath/memory.h"

#include <map>
#include <queue>
#include <sstream>

#include "datapath/ready_valid.h"

namespace salsa {

namespace {

// Each cycle has three sub-phases, totally ordered like the netlist event
// engine's: consumers pop (0), producers push (1), channels clock (2). The
// consumer-before-producer order is what lets RvChannel::ready() reflect a
// same-cycle pop, keeping full throughput without a skid buffer.
enum MemPhase : int { kConsume = 0, kProduce = 1, kEdge = 2 };

struct ReqPayload {
  MemOp op;
  int prog_index = 0;
};

struct MemEv {
  int64_t key;  // cycle * 4 + phase
  int comp;     // LSU index, kRamComp, or kEdgeComp
};

struct MemEvAfter {
  bool operator()(const MemEv& x, const MemEv& y) const {
    if (x.key != y.key) return x.key > y.key;
    return x.comp > y.comp;
  }
};

class MemorySim {
 public:
  MemorySim(std::span<const std::vector<MemOp>> programs, int ram_latency)
      : programs_(programs), latency_(ram_latency) {
    SALSA_CHECK_MSG(ram_latency >= 1, "RAM latency must be >= 1 cycle");
    const size_t n = programs.size();
    req_.resize(n);
    resp_.resize(n);
    next_op_.assign(n, 0);
    outstanding_.assign(n, 0);
    outstanding_load_.assign(n, 0);
    sched_key_.assign((n + 1) * 2, -1);
    result_.loads.resize(n);
  }

  MemSimResult run() {
    const int num_lsus = static_cast<int>(programs_.size());
    for (int u = 0; u < num_lsus; ++u) schedule(u, 0, kProduce);
    schedule(kRam, 0, kConsume);

    int64_t last_cycle = -1;
    while (!heap_.empty()) {
      const MemEv e = heap_.top();
      heap_.pop();
      const int64_t cycle = e.key / 4;
      const int phase = static_cast<int>(e.key % 4);
      last_cycle = cycle;
      ++result_.stats.events;
      if (e.comp == kEdgeComp) {
        edge(cycle);
      } else if (e.comp == kRam) {
        phase == kConsume ? ram_consume(cycle) : ram_produce(cycle);
      } else {
        phase == kConsume ? lsu_consume(e.comp, cycle)
                          : lsu_produce(e.comp, cycle);
      }
    }
    for (int u = 0; u < num_lsus; ++u)
      SALSA_CHECK_MSG(
          !outstanding_[static_cast<size_t>(u)] &&
              next_op_[static_cast<size_t>(u)] ==
                  static_cast<int>(programs_[static_cast<size_t>(u)].size()),
          "memory simulation deadlocked with transactions in flight");
    result_.stats.cycles = last_cycle + 1;
    return std::move(result_);
  }

 private:
  static constexpr int kRam = -2;       // sentinel; real id derived below
  static constexpr int kEdgeComp = -1;  // per-cycle channel clock event

  size_t comp_slot(int comp, int phase) const {
    const size_t base = comp == kRam ? programs_.size()
                                     : static_cast<size_t>(comp);
    return base * 2 + static_cast<size_t>(phase);
  }

  void schedule(int comp, int64_t cycle, int phase) {
    const int64_t key = cycle * 4 + phase;
    if (comp != kEdgeComp) {
      const size_t s = comp_slot(comp, phase);
      if (sched_key_[s] == key) return;
      sched_key_[s] = key;
    }
    heap_.push(MemEv{key, comp});
    if (static_cast<long>(heap_.size()) > result_.stats.heap_peak)
      result_.stats.heap_peak = static_cast<long>(heap_.size());
  }

  void mark_edge(int64_t cycle) {
    if (edge_cycle_ == cycle) return;
    edge_cycle_ = cycle;
    schedule(kEdgeComp, cycle, kEdge);
  }

  void lsu_consume(int u, int64_t cycle) {
    auto& ch = resp_[static_cast<size_t>(u)];
    if (!ch.valid()) return;
    if (outstanding_load_[static_cast<size_t>(u)])
      result_.loads[static_cast<size_t>(u)].push_back(ch.peek());
    ch.pop();
    outstanding_[static_cast<size_t>(u)] = 0;
    mark_edge(cycle);
    schedule(u, cycle, kProduce);  // the freed LSU may issue this cycle
  }

  void lsu_produce(int u, int64_t cycle) {
    const auto& prog = programs_[static_cast<size_t>(u)];
    const int next = next_op_[static_cast<size_t>(u)];
    if (outstanding_[static_cast<size_t>(u)] ||
        next >= static_cast<int>(prog.size()))
      return;
    auto& ch = req_[static_cast<size_t>(u)];
    if (!ch.ready()) return;  // backpressured: a channel change re-wakes us
    const MemOp& op = prog[static_cast<size_t>(next)];
    ch.push(ReqPayload{op, next});
    outstanding_[static_cast<size_t>(u)] = 1;
    outstanding_load_[static_cast<size_t>(u)] = op.write ? 0 : 1;
    next_op_[static_cast<size_t>(u)] = next + 1;
    mark_edge(cycle);
  }

  void ram_consume(int64_t cycle) {
    if (ram_busy_) return;  // serving: we self-wake when the port frees
    for (size_t u = 0; u < req_.size(); ++u) {
      if (!req_[u].valid()) continue;
      serving_ = req_[u].peek();
      serving_lsu_ = static_cast<int>(u);
      req_[u].pop();
      ram_busy_ = true;
      // Response pushed at `finish` is valid to the LSU at finish + 1 ==
      // accept cycle + latency.
      ram_finish_ = cycle + latency_ - 1;
      result_.port_order.emplace_back(serving_lsu_, serving_.prog_index);
      mark_edge(cycle);
      schedule(kRam, ram_finish_, kProduce);
      return;  // single port: lowest-index request wins this cycle
    }
  }

  void ram_produce(int64_t cycle) {
    if (!ram_busy_ || cycle < ram_finish_) return;
    auto& ch = resp_[static_cast<size_t>(serving_lsu_)];
    if (!ch.ready()) return;  // backpressured by the LSU; its pop re-wakes us
    int64_t value = serving_.op.data;
    if (serving_.op.write) {
      mem_[serving_.op.addr] = serving_.op.data;
    } else {
      const auto it = mem_.find(serving_.op.addr);
      value = it == mem_.end() ? 0 : it->second;
    }
    ch.push(value);
    ram_busy_ = false;
    mark_edge(cycle);
    schedule(kRam, cycle + 1, kConsume);  // port free: arbitrate next cycle
  }

  void edge(int64_t cycle) {
    for (size_t u = 0; u < req_.size(); ++u) {
      if (req_[u].clock()) {
        schedule(kRam, cycle + 1, kConsume);
        schedule(static_cast<int>(u), cycle + 1, kProduce);
      }
      if (resp_[u].clock()) {
        schedule(static_cast<int>(u), cycle + 1, kConsume);
        schedule(kRam, cycle + 1, kProduce);
      }
    }
  }

  std::span<const std::vector<MemOp>> programs_;
  const int latency_;

  std::vector<RvChannel<ReqPayload>> req_;
  std::vector<RvChannel<int64_t>> resp_;
  std::vector<int> next_op_;
  std::vector<char> outstanding_, outstanding_load_;
  std::vector<int64_t> sched_key_;

  bool ram_busy_ = false;
  ReqPayload serving_{};
  int serving_lsu_ = 0;
  int64_t ram_finish_ = 0;
  std::map<int64_t, int64_t> mem_;

  int64_t edge_cycle_ = -1;
  std::priority_queue<MemEv, std::vector<MemEv>, MemEvAfter> heap_;
  MemSimResult result_;
};

}  // namespace

MemSimResult simulate_memory(std::span<const std::vector<MemOp>> programs,
                             int ram_latency) {
  MemorySim sim(programs, ram_latency);
  return sim.run();
}

std::vector<int64_t> magic_memory_loads(std::span<const MemOp> ops) {
  std::map<int64_t, int64_t> mem;
  std::vector<int64_t> loads;
  for (const MemOp& op : ops) {
    if (op.write) {
      mem[op.addr] = op.data;
    } else {
      const auto it = mem.find(op.addr);
      loads.push_back(it == mem.end() ? 0 : it->second);
    }
  }
  return loads;
}

std::string diff_memory_sim(std::span<const std::vector<MemOp>> programs,
                            int ram_latency) {
  const MemSimResult got = simulate_memory(programs, ram_latency);
  std::ostringstream os;

  // Transaction conservation + per-LSU program order at the port.
  size_t total = 0;
  for (const auto& p : programs) total += p.size();
  if (got.port_order.size() != total) {
    os << "port accepted " << got.port_order.size() << " of " << total
       << " transactions";
    return os.str();
  }
  std::vector<int> last_index(programs.size(), -1);
  std::vector<MemOp> port_ops;
  port_ops.reserve(total);
  for (const auto& [u, ix] : got.port_order) {
    if (ix != last_index[static_cast<size_t>(u)] + 1) {
      os << "LSU " << u << " transactions reordered at the port: index " << ix
         << " after " << last_index[static_cast<size_t>(u)];
      return os.str();
    }
    last_index[static_cast<size_t>(u)] = ix;
    port_ops.push_back(programs[static_cast<size_t>(u)][static_cast<size_t>(ix)]);
  }

  // Magic-memory replay of the accepted order must reproduce every load.
  const std::vector<int64_t> want = magic_memory_loads(port_ops);
  std::vector<std::vector<int64_t>> want_per_lsu(programs.size());
  size_t w = 0;
  for (const auto& [u, ix] : got.port_order)
    if (!programs[static_cast<size_t>(u)][static_cast<size_t>(ix)].write)
      want_per_lsu[static_cast<size_t>(u)].push_back(want[w++]);
  for (size_t u = 0; u < programs.size(); ++u) {
    if (got.loads[u].size() != want_per_lsu[u].size()) {
      os << "LSU " << u << " returned " << got.loads[u].size() << " loads, "
         << "magic memory expected " << want_per_lsu[u].size();
      return os.str();
    }
    for (size_t i = 0; i < got.loads[u].size(); ++i)
      if (got.loads[u][i] != want_per_lsu[u][i]) {
        os << "LSU " << u << " load " << i << ": event=" << got.loads[u][i]
           << " magic=" << want_per_lsu[u][i];
        return os.str();
      }
  }
  return {};
}

std::vector<std::vector<MemOp>> mem_ops_from_outputs(const SimResult& outputs,
                                                     int64_t addr_space) {
  SALSA_CHECK(addr_space >= 1);
  SALSA_CHECK_MSG(!outputs.outputs.empty() &&
                      outputs.outputs[0].size() >= 2 &&
                      outputs.outputs[0].size() % 2 == 0,
                  "memory traffic needs (addr, data) output pairs");
  const size_t streams = outputs.outputs[0].size() / 2;
  std::vector<std::vector<MemOp>> programs(streams);
  for (size_t iter = 0; iter < outputs.outputs.size(); ++iter)
    for (size_t j = 0; j < streams; ++j) {
      const int64_t a = outputs.outputs[iter][2 * j];
      MemOp op;
      op.write = iter % 2 == 0;
      op.addr = ((a % addr_space) + addr_space) % addr_space;
      op.data = outputs.outputs[iter][2 * j + 1];
      programs[j].push_back(op);
    }
  return programs;
}

}  // namespace salsa
