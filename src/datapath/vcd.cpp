#include "datapath/vcd.h"

#include <sstream>

#include "datapath/event_sim.h"

namespace salsa {

namespace {

// Compact printable identifier per VCD variable (! .. ~ alphabet).
std::string vcd_id(int index) {
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return id;
}

std::string bits_of(int64_t v) {
  std::string out = "b";
  bool leading = true;
  for (int bit = 63; bit >= 0; --bit) {
    const bool one = (static_cast<uint64_t>(v) >> bit) & 1;
    if (one) leading = false;
    if (!leading || bit == 0) out += one ? '1' : '0';
  }
  return out;
}

}  // namespace

std::string dump_vcd(const Netlist& nl,
                     std::span<const std::vector<int64_t>> inputs,
                     std::span<const int64_t> initial_states, int iterations,
                     const std::string& module_name, SimEngine engine) {
  const AllocProblem& prob = nl.binding().prob();
  const int nreg = prob.num_regs();
  const int L = prob.sched().length();

  SimTrace trace;
  if (engine == SimEngine::kEventDriven)
    (void)simulate_events(nl, inputs, initial_states, iterations, &trace);
  else
    (void)simulate(nl, inputs, initial_states, iterations, &trace);

  std::ostringstream os;
  os << "$date today $end\n$version salsa datapath simulator $end\n"
     << "$timescale 1ns $end\n$scope module " << module_name << " $end\n";
  os << "$var wire 16 " << vcd_id(nreg) << " step $end\n";
  for (RegId r = 0; r < nreg; ++r)
    os << "$var wire 64 " << vcd_id(r) << " r" << r << " $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<int64_t> last(static_cast<size_t>(nreg), 0);
  bool first = true;
  for (size_t g = 0; g < trace.regs.size(); ++g) {
    os << "#" << g << "\n";
    os << bits_of(static_cast<int64_t>(g % static_cast<size_t>(L))) << " "
       << vcd_id(nreg) << "\n";
    for (RegId r = 0; r < nreg; ++r) {
      const int64_t v = trace.regs[g][static_cast<size_t>(r)];
      if (first || v != last[static_cast<size_t>(r)]) {
        os << bits_of(v) << " " << vcd_id(r) << "\n";
        last[static_cast<size_t>(r)] = v;
      }
    }
    first = false;
  }
  os << "#" << trace.regs.size() << "\n";
  return os.str();
}

}  // namespace salsa
