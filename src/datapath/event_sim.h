// Event-driven simulation of an allocated datapath. Where the full-eval
// engine (datapath/simulator.h) rescans every FU action, register load and
// pass-through candidate on every global step — O(netlist) per step, with a
// per-FU scan that makes large generated designs quadratic — this engine
// compiles the netlist into per-slot components once and then processes a
// time-ordered event queue: a component re-evaluates only when one of its
// input endpoints changed (or another writer disturbed its output cell)
// since it last fired. Idle steps cost nothing; stable subgraphs settle and
// go silent. Semantics are pinned signal-for-signal and cycle-for-cycle to
// the full-eval engine: the two must produce identical output streams AND
// identical per-step register traces (hence identical VCD dumps) on every
// netlist — diff_sim_engines() is that contract, and the differential
// harness (tests/test_sim_differential.cpp, salsa_audit --sim) enforces it
// the same way verify.cpp backs the bitplanes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "datapath/simulator.h"

namespace salsa {

// Mutation hooks (salsa_audit --break-event-skip): when armed, the Nth
// change-event wake-up is dropped AND its dedup key is recorded as if the
// occurrence had been enqueued — a lost scheduled event. Redundant wakes
// from a component's other operands cannot heal the hole, so the slot
// computes on stale inputs: exactly the bug class the event model risks
// over the always-reevaluate reference, and the differential harness must
// report the resulting stale signal. wake_count advances only while armed,
// so callers arm relative to its current value; a hook left nonzero after
// a run means the mutation never fired and proved nothing.
namespace event_sim_hooks {
inline long drop_wake_after = 0;
inline long wake_count = 0;
}  // namespace event_sim_hooks

/// Counters the event engine reports alongside its results; the wall-clock
/// record (salsa_audit --sim-wall) and EXPERIMENTS.md quote them.
struct EventSimStats {
  long firings = 0;     ///< slot evaluations actually executed
  long wakes = 0;       ///< change-event wake-ups delivered
  long slots = 0;       ///< compiled static slots (netlist size proxy)
  long heap_peak = 0;   ///< max simultaneous pending events
};

/// Drop-in equivalent of simulate() on the event engine: same inputs
/// contract (inputs[i] feeds iteration i; the boundary load of the last
/// simulated iteration needs inputs[iterations] when present), same
/// SimResult/SimTrace shapes, identical values.
SimResult simulate_events(const Netlist& nl,
                          std::span<const std::vector<int64_t>> inputs,
                          std::span<const int64_t> initial_states,
                          int iterations, SimTrace* trace = nullptr,
                          EventSimStats* stats = nullptr);

/// The differential contract: runs both engines on the same stimuli and
/// compares every output value and every per-step register snapshot.
/// Returns "" when equivalent, else a description of the first divergence
/// (engine, global step, register/output, both values).
std::string diff_sim_engines(const Netlist& nl,
                             std::span<const std::vector<int64_t>> inputs,
                             std::span<const int64_t> initial_states,
                             int iterations);

/// Seeded random-stimulus differential (the shape of
/// random_equivalence_check, but event-vs-full-eval instead of
/// datapath-vs-evaluator).
std::string random_engine_diff(const Netlist& nl, int iterations,
                               uint64_t seed);

}  // namespace salsa
