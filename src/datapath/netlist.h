// Datapath netlist: the structural view of a legal binding. Routing tables
// give, for every module input pin and control step, the unique source
// driving it (derived from the point-to-point connection enumeration), plus
// the per-step controller actions (which ops execute where, which registers
// load, which outputs sample). The simulator executes this structure; the
// Verilog emitter prints it.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/cost.h"
#include "core/mux_merge.h"

namespace salsa {

/// An operation execution slot: op `node` starts on FU `fu` at step `step`.
struct FuAction {
  NodeId node;
  FuId fu;
  int step;
};

/// A register load: register `reg` latches from `src` at the end of `step`.
struct RegLoad {
  RegId reg;
  Endpoint src;
  int step;
};

/// An output sample: output node `node` reads register `reg` during `step`.
struct OutSample {
  NodeId node;
  RegId reg;
  int step;
};

class Netlist {
 public:
  /// Builds the netlist of a legal binding (throws on illegal bindings).
  /// The binding is copied: a Netlist stays valid independently of the
  /// binding it was built from (the underlying AllocProblem must outlive it).
  explicit Netlist(const Binding& b);

  const Binding& binding() const { return b_; }

  /// Source driving a pin at a step, if any.
  std::optional<Endpoint> source_of(const Pin& pin, int step) const;

  const std::vector<FuAction>& fu_actions() const { return fu_actions_; }
  const std::vector<RegLoad>& reg_loads() const { return reg_loads_; }
  const std::vector<OutSample>& out_samples() const { return out_samples_; }
  const MuxMergeResult& muxes() const { return muxes_; }

  /// Distinct non-constant point-to-point connections.
  int num_connections() const { return connections_; }

 private:
  Binding b_;
  std::map<std::pair<uint64_t, int>, Endpoint> route_;  // (pin key, step)
  std::vector<FuAction> fu_actions_;
  std::vector<RegLoad> reg_loads_;
  std::vector<OutSample> out_samples_;
  MuxMergeResult muxes_;
  int connections_ = 0;
};

}  // namespace salsa
