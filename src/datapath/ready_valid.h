// Ready/valid elastic connections for the event-driven memory components
// (datapath/memory.h). A channel is one registered slot with the standard
// handshake: the producer may push only while ready(), the consumer sees
// valid()/peek() and pops, and both effects commit at the cycle edge
// (clock()). Full throughput is preserved because ready() already accounts
// for a pop staged this cycle — the evaluation order inside a cycle is
// consumers first, then producers, then the edge, which is exactly the
// sub-phase order the memory event kernel uses.
//
// Handshake safety is CHECKed, not assumed: pushing while !ready() or
// popping while !valid() aborts. That turns protocol bugs in components
// into hard failures the differential memory tests can pin.
#pragma once

#include <utility>

#include "util/diagnostics.h"

namespace salsa {

template <class T>
class RvChannel {
 public:
  /// Consumer side: a payload is visible the cycle after its push committed.
  bool valid() const { return full_; }
  const T& peek() const {
    SALSA_CHECK_MSG(full_, "RvChannel::peek on empty channel");
    return data_;
  }
  void pop() {
    SALSA_CHECK_MSG(full_ && !pop_pending_, "RvChannel::pop handshake abuse");
    pop_pending_ = true;
  }

  /// Producer side: ready when the slot is free after this cycle's pop.
  bool ready() const { return (!full_ || pop_pending_) && !push_pending_; }
  void push(T v) {
    SALSA_CHECK_MSG(ready(), "RvChannel::push while not ready");
    push_pending_ = true;
    push_data_ = std::move(v);
  }

  /// Cycle edge: commits the staged pop/push. Returns whether the channel's
  /// observable state changed — the event kernel wakes both endpoints then.
  bool clock() {
    const bool changed = pop_pending_ || push_pending_;
    if (pop_pending_) full_ = false;
    if (push_pending_) {
      full_ = true;
      data_ = std::move(push_data_);
    }
    pop_pending_ = false;
    push_pending_ = false;
    return changed;
  }

 private:
  bool full_ = false;
  bool pop_pending_ = false;
  bool push_pending_ = false;
  T data_{};
  T push_data_{};
};

}  // namespace salsa
