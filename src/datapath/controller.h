// Controller analysis: the width and regularity of the control word the
// allocated datapath needs per control step — mux select bits, register
// load enables, FU operation selects. Allocation decisions change these
// (an effect later literature examines in depth); the harnesses report them
// alongside the interconnect metrics.
#pragma once

#include <string>
#include <vector>

#include "datapath/netlist.h"

namespace salsa {

struct ControllerStats {
  int mux_select_bits = 0;  ///< sum of ceil(log2(#sources)) over input pins
  int reg_enable_bits = 0;  ///< registers that load at least once
  int fu_select_bits = 0;   ///< ALUs executing more than one op kind
  int total_bits() const {
    return mux_select_bits + reg_enable_bits + fu_select_bits;
  }
  /// Distinct control words over the schedule (a measure of controller
  /// regularity; fewer distinct words mean a smaller decoder).
  int distinct_words = 0;
  /// Steps whose control word is all-idle: no FU starts an operation and no
  /// register loads. The datapath coasts (registers hold, pass-through
  /// routing may still be configured) — the controller's stall states. The
  /// event-driven simulator schedules nothing for these steps; the
  /// simulator edge-case tests pin that both engines coast identically.
  int idle_steps = 0;
};

/// Computes the control-word statistics of a netlist.
ControllerStats analyze_controller(const Netlist& nl);

/// Renders the per-step control word table (for reports and debugging).
std::string controller_table(const Netlist& nl);

}  // namespace salsa
