// VCD (value change dump) waveform export: runs the cycle-accurate
// simulator with a register trace and writes an IEEE-1364 VCD file, so an
// allocation's register activity can be inspected in any waveform viewer
// alongside the emitted Verilog.
#pragma once

#include <span>
#include <string>

#include "datapath/simulator.h"

namespace salsa {

/// Simulates `iterations` iterations on the given stimuli and renders the
/// register waveforms as VCD text (one timestep per control step, 64-bit
/// vector variables named r0..rN plus the step counter). `engine` selects
/// the simulator; by the differential contract both engines must render
/// byte-identical dumps — the golden VCD tests pin that.
std::string dump_vcd(const Netlist& nl,
                     std::span<const std::vector<int64_t>> inputs,
                     std::span<const int64_t> initial_states, int iterations,
                     const std::string& module_name,
                     SimEngine engine = SimEngine::kFullEval);

}  // namespace salsa
