#include "datapath/event_sim.h"

#include <queue>
#include <sstream>
#include <vector>

#include "cdfg/eval.h"
#include "util/rng.h"

namespace salsa {

namespace {

// The reference engine's four phases per global step, refined into eight
// totally ordered sub-phases so in-place state updates reproduce its
// copy-snapshot semantics exactly:
//   * everything "during" a step (FU operand reads, output samples,
//     pass-through evaluation, register-load source reads of registers)
//     observes the state as of the end of the previous step;
//   * register-load source reads of FU outputs additionally observe the
//     results landing at THIS step's edge (the reference's `pre` machine);
//   * all writes commit at the edge, invisible to this step's reads.
// Evaluation sub-phases compute against the live arrays (safe because every
// write sits at a later sub-phase of the same step) and push their write as
// a dynamic apply event, so two register transfers at one step never see
// each other's new value — the reference's `pre` copy, without the copy.
enum Phase : int {
  kPhInput = 0,      // iteration boundary: input-port values advance
  kPhCompute = 1,    // FU operation starts (operand reads + compute)
  kPhSample = 2,     // output ports sample registers (pre-edge)
  kPhPassEval = 3,   // pass-throughs read pin 0 (pre-edge, pre-landing)
  kPhPassApply = 4,  // pass values land at the FU outputs
  kPhLand = 5,       // multi-cycle results land at the FU outputs
  kPhLoadEval = 6,   // register loads read sources (post-landing FU outs)
  kPhLoadApply = 7,  // registers latch; the step's edge completes
};

enum class SlotKind : uint8_t { kFuStart, kPass, kRegLoad, kOutSample, kInput };

struct Slot {
  SlotKind kind;
  uint8_t phase;
  int step;  // control step in [0, L) this slot fires at, every iteration
  int a;     // FuId / RegId / output index / port index, per kind
  OpKind op = OpKind::kNop;
  int delay = 0;
  bool binary = false;
  Endpoint src0{Endpoint::Kind::kConstPort, 0};
  Endpoint src1{Endpoint::Kind::kConstPort, 0};
};

// Event types share one queue; the type tag orders ties deterministically
// (static fires before applies before landings never collide across types at
// equal keys in practice, but the order must not depend on heap internals).
enum EvType : int32_t { kEvFire = 0, kEvApply = 1, kEvLand = 2 };

struct Ev {
  int64_t key;  // gstep * 8 + phase
  int32_t type;
  int32_t slot;
  int64_t payload;
};

struct EvAfter {
  bool operator()(const Ev& x, const Ev& y) const {
    if (x.key != y.key) return x.key > y.key;
    if (x.type != y.type) return x.type > y.type;
    if (x.slot != y.slot) return x.slot > y.slot;
    return x.payload > y.payload;
  }
};

class EventSim {
 public:
  EventSim(const Netlist& nl, std::span<const std::vector<int64_t>> inputs,
           std::span<const int64_t> initial_states, int iterations)
      : nl_(nl),
        inputs_(inputs),
        prob_(nl.binding().prob()),
        g_(prob_.cdfg()),
        L_(prob_.sched().length()),
        iterations_(iterations),
        total_(static_cast<int64_t>(iterations) * L_) {
    SALSA_CHECK_MSG(static_cast<int>(inputs.size()) >= iterations,
                    "simulate_events: not enough input vectors");
    build_slots();
    regs_ = initial_register_image(nl, inputs, initial_states);
    fu_out_.assign(static_cast<size_t>(prob_.fus().size()), 0);
    fu_has_.assign(static_cast<size_t>(prob_.fus().size()), 0);
    port_val_.assign(input_nodes_.size(), 0);
    port_ok_.assign(input_nodes_.size(), 0);
  }

  SimResult run(SimTrace* trace, EventSimStats* stats) {
    result_.outputs.assign(static_cast<size_t>(iterations_), {});
    for (auto& o : result_.outputs) o.assign(output_nodes_.size(), 0);

    // Cold start: every slot fires at its first occurrence; afterwards only
    // change events (or writer conflicts on a slot's output cell) wake it.
    for (int s = 0; s < static_cast<int>(slots_.size()); ++s)
      schedule(s, slots_[static_cast<size_t>(s)].kind == SlotKind::kInput
                      ? 0
                      : slots_[static_cast<size_t>(s)].step);

    if (trace != nullptr) {
      for (int64_t gs = 0; gs < total_; ++gs) {
        drain((gs + 1) * 8);
        trace->regs.push_back(regs_);
      }
    } else {
      drain(total_ * 8);
    }
    if (stats != nullptr) {
      stats->firings = firings_;
      stats->wakes = wakes_;
      stats->slots = static_cast<long>(slots_.size());
      stats->heap_peak = heap_peak_;
    }
    return std::move(result_);
  }

 private:
  void build_slots() {
    const Schedule& sched = prob_.sched();
    input_nodes_ = g_.input_nodes();
    output_nodes_ = g_.output_nodes();
    const int nfu = prob_.fus().size();
    const int nreg = prob_.num_regs();

    port_index_.assign(static_cast<size_t>(g_.num_nodes()), -1);
    for (size_t i = 0; i < input_nodes_.size(); ++i)
      port_index_[static_cast<size_t>(input_nodes_[i])] = static_cast<int>(i);

    // Static (FU, step) occupancy and landing masks. A result lands at
    // step a.step + d - 1 of EVERY iteration from 0 on (the schedule keeps
    // finish steps inside the period), so the reference's dynamic fresh[]
    // test is a static predicate here — that is what makes pass-through
    // slots compile-time enumerable.
    std::vector<char> busy(static_cast<size_t>(nfu) * static_cast<size_t>(L_),
                           0);
    std::vector<char> lands(busy.size(), 0);
    for (const FuAction& a : nl_.fu_actions()) {
      const Node& nd = g_.node(a.node);
      const int occ = sched.hw().occupancy(nd.kind);
      const int d = sched.hw().delay(nd.kind);
      SALSA_CHECK_MSG(a.step + d - 1 < L_,
                      "event engine: result lands outside the period");
      for (int s = a.step; s < a.step + occ; ++s)
        busy[static_cast<size_t>(a.fu) * static_cast<size_t>(L_) +
             static_cast<size_t>(s)] = 1;
      lands[static_cast<size_t>(a.fu) * static_cast<size_t>(L_) +
            static_cast<size_t>(a.step + d - 1)] = 1;
    }

    reg_readers_.assign(static_cast<size_t>(nreg), {});
    reg_writers_.assign(static_cast<size_t>(nreg), {});
    fu_readers_next_.assign(static_cast<size_t>(nfu), {});
    fu_readers_same_.assign(static_cast<size_t>(nfu), {});
    fu_writers_.assign(static_cast<size_t>(nfu), {});
    port_readers_.assign(input_nodes_.size(), {});

    auto subscribe = [&](int slot, const Endpoint& e, bool load_phase) {
      switch (e.kind) {
        case Endpoint::Kind::kRegOut:
          reg_readers_[static_cast<size_t>(e.id)].push_back(slot);
          break;
        case Endpoint::Kind::kFuOut:
          (load_phase ? fu_readers_same_ : fu_readers_next_)
              [static_cast<size_t>(e.id)]
                  .push_back(slot);
          break;
        case Endpoint::Kind::kInPort:
          port_readers_[static_cast<size_t>(
                            port_index_[static_cast<size_t>(e.id)])]
              .push_back(slot);
          break;
        case Endpoint::Kind::kConstPort:
          break;  // constants never change; nothing to subscribe to
      }
    };

    for (const FuAction& a : nl_.fu_actions()) {
      const Node& nd = g_.node(a.node);
      Slot s;
      s.kind = SlotKind::kFuStart;
      s.phase = kPhCompute;
      s.step = a.step;
      s.a = a.fu;
      s.op = nd.kind;
      s.delay = sched.hw().delay(nd.kind);
      s.binary = nd.kind != OpKind::kNop;
      const auto src0 = nl_.source_of(Pin{Pin::Kind::kFuIn0, a.fu}, a.step);
      SALSA_CHECK_MSG(src0.has_value(), "operand pin has no route");
      s.src0 = *src0;
      if (s.binary) {
        const auto src1 = nl_.source_of(Pin{Pin::Kind::kFuIn1, a.fu}, a.step);
        SALSA_CHECK_MSG(src1.has_value(), "operand pin has no route");
        s.src1 = *src1;
      }
      const int id = add_slot(s);
      subscribe(id, s.src0, false);
      if (s.binary) subscribe(id, s.src1, false);
      fu_writers_[static_cast<size_t>(a.fu)].push_back(id);
    }

    // Pass-throughs: forward pin 0 at every (FU, step) where the unit is
    // neither executing nor landing a result and the pin is routed.
    for (FuId f = 0; f < nfu; ++f)
      for (int t = 0; t < L_; ++t) {
        const size_t ix = static_cast<size_t>(f) * static_cast<size_t>(L_) +
                          static_cast<size_t>(t);
        if (busy[ix] || lands[ix]) continue;
        const auto src = nl_.source_of(Pin{Pin::Kind::kFuIn0, f}, t);
        if (!src.has_value()) continue;
        Slot s;
        s.kind = SlotKind::kPass;
        s.phase = kPhPassEval;
        s.step = t;
        s.a = f;
        s.src0 = *src;
        const int id = add_slot(s);
        subscribe(id, s.src0, false);
        fu_writers_[static_cast<size_t>(f)].push_back(id);
      }

    for (const RegLoad& ld : nl_.reg_loads()) {
      Slot s;
      s.kind = SlotKind::kRegLoad;
      s.phase = kPhLoadEval;
      s.step = ld.step;
      s.a = ld.reg;
      s.src0 = ld.src;
      const int id = add_slot(s);
      subscribe(id, s.src0, true);
      reg_writers_[static_cast<size_t>(ld.reg)].push_back(id);
    }

    for (const OutSample& o : nl_.out_samples()) {
      Slot s;
      s.kind = SlotKind::kOutSample;
      s.phase = kPhSample;
      s.step = o.step;
      size_t k = 0;
      while (output_nodes_[k] != o.node) ++k;
      s.a = static_cast<int>(k);
      s.src0 = Endpoint{Endpoint::Kind::kRegOut, o.reg};
      add_slot(s);  // samples fire every iteration; no subscription needed
    }

    for (size_t i = 0; i < input_nodes_.size(); ++i) {
      Slot s;
      s.kind = SlotKind::kInput;
      s.phase = kPhInput;
      s.step = 0;
      s.a = static_cast<int>(i);
      add_slot(s);
    }
  }

  int add_slot(const Slot& s) {
    slots_.push_back(s);
    sched_key_.push_back(-1);
    fired_key_.push_back(-1);
    return static_cast<int>(slots_.size()) - 1;
  }

  // ---- queue ---------------------------------------------------------------

  void push(const Ev& e) {
    heap_.push(e);
    if (static_cast<long>(heap_.size()) > heap_peak_)
      heap_peak_ = static_cast<long>(heap_.size());
  }

  /// Raw occurrence scheduling (cold start and periodic self-reschedule).
  void schedule(int slot, int64_t gstep) {
    if (gstep >= total_) return;
    const int64_t key = gstep * 8 + slots_[static_cast<size_t>(slot)].phase;
    if (sched_key_[static_cast<size_t>(slot)] == key) return;
    sched_key_[static_cast<size_t>(slot)] = key;
    push(Ev{key, kEvFire, slot, 0});
  }

  /// Change-event wake-up: schedules the slot's first occurrence whose read
  /// can observe a change that became visible at `min_gstep`. This is the
  /// seam the --break-event-skip mutation attacks: dropping one wake leaves
  /// a component asleep on stale inputs, and the differential harness must
  /// see the divergence.
  void wake(int slot, int64_t min_gstep) {
    const Slot& s = slots_[static_cast<size_t>(slot)];
    const int64_t base = min_gstep - s.step;
    const int64_t k = base <= 0 ? 0 : (base + L_ - 1) / L_;
    const int64_t gstep = s.step + k * L_;
    if (gstep >= total_) return;
    const int64_t key = gstep * 8 + s.phase;
    if (sched_key_[static_cast<size_t>(slot)] == key) return;
    if (event_sim_hooks::drop_wake_after > 0 &&
        ++event_sim_hooks::wake_count == event_sim_hooks::drop_wake_after) {
      // Model a lost scheduled event: the dedup key is recorded as if the
      // occurrence had been enqueued, so redundant wakes from other operands
      // cannot heal the hole and the component computes on stale inputs.
      event_sim_hooks::drop_wake_after = 0;
      sched_key_[static_cast<size_t>(slot)] = key;
      return;
    }
    ++wakes_;
    sched_key_[static_cast<size_t>(slot)] = key;
    push(Ev{key, kEvFire, slot, 0});
  }

  // ---- state reads ---------------------------------------------------------

  int64_t read(const Endpoint& e) const {
    switch (e.kind) {
      case Endpoint::Kind::kRegOut:
        return regs_[static_cast<size_t>(e.id)];
      case Endpoint::Kind::kConstPort:
        return g_.node(e.id).cvalue;
      case Endpoint::Kind::kInPort: {
        const int p = port_index_[static_cast<size_t>(e.id)];
        SALSA_CHECK_MSG(port_ok_[static_cast<size_t>(p)] != 0,
                        "input port read past the provided iterations");
        return port_val_[static_cast<size_t>(p)];
      }
      case Endpoint::Kind::kFuOut:
        SALSA_CHECK_MSG(fu_has_[static_cast<size_t>(e.id)] != 0,
                        "FU output read while no result is present");
        return fu_out_[static_cast<size_t>(e.id)];
    }
    fail("bad endpoint");
  }

  // ---- change propagation --------------------------------------------------

  void on_fu_changed(FuId f, int64_t gstep, int origin) {
    for (int s : fu_readers_next_[static_cast<size_t>(f)]) wake(s, gstep + 1);
    for (int s : fu_readers_same_[static_cast<size_t>(f)]) wake(s, gstep);
    for (int s : fu_writers_[static_cast<size_t>(f)])
      if (s != origin) wake(s, gstep + 1);
  }

  void on_reg_changed(RegId r, int64_t gstep, int origin) {
    for (int s : reg_readers_[static_cast<size_t>(r)]) wake(s, gstep + 1);
    for (int s : reg_writers_[static_cast<size_t>(r)])
      if (s != origin) wake(s, gstep + 1);
  }

  // ---- firing --------------------------------------------------------------

  void fire(int slot, int64_t gstep) {
    const Slot& s = slots_[static_cast<size_t>(slot)];
    switch (s.kind) {
      case SlotKind::kInput: {
        const int64_t next_iter = gstep / L_ + 1;
        const bool ok = next_iter < static_cast<int64_t>(inputs_.size());
        const int64_t v =
            ok ? inputs_[static_cast<size_t>(next_iter)][static_cast<size_t>(
                     s.a)]
               : 0;
        if ((port_ok_[static_cast<size_t>(s.a)] != 0) != ok ||
            (ok && port_val_[static_cast<size_t>(s.a)] != v)) {
          port_ok_[static_cast<size_t>(s.a)] = ok ? 1 : 0;
          port_val_[static_cast<size_t>(s.a)] = v;
          for (int r : port_readers_[static_cast<size_t>(s.a)])
            wake(r, gstep);
        }
        schedule(slot, gstep + L_);
        break;
      }
      case SlotKind::kFuStart: {
        const int64_t v0 = read(s.src0);
        const int64_t value =
            s.binary ? apply_op(s.op, v0, read(s.src1)) : v0;
        push(Ev{(gstep + s.delay - 1) * 8 + kPhLand, kEvLand, slot, value});
        break;
      }
      case SlotKind::kOutSample: {
        result_.outputs[static_cast<size_t>(gstep / L_)]
                       [static_cast<size_t>(s.a)] =
            regs_[static_cast<size_t>(s.src0.id)];
        schedule(slot, gstep + L_);
        break;
      }
      case SlotKind::kPass:
        push(Ev{gstep * 8 + kPhPassApply, kEvApply, slot, read(s.src0)});
        break;
      case SlotKind::kRegLoad: {
        if (s.src0.kind == Endpoint::Kind::kInPort) {
          const int p = port_index_[static_cast<size_t>(s.src0.id)];
          if (port_ok_[static_cast<size_t>(p)] == 0)
            break;  // past the last provided iteration: hold the register
          push(Ev{gstep * 8 + kPhLoadApply, kEvApply, slot,
                  port_val_[static_cast<size_t>(p)]});
          break;
        }
        push(Ev{gstep * 8 + kPhLoadApply, kEvApply, slot, read(s.src0)});
        break;
      }
    }
  }

  void apply(const Ev& e, int64_t gstep) {
    const Slot& s = slots_[static_cast<size_t>(e.slot)];
    if (e.type == kEvLand || s.kind == SlotKind::kPass) {
      const FuId f = s.a;
      const bool had = fu_has_[static_cast<size_t>(f)] != 0;
      fu_has_[static_cast<size_t>(f)] = 1;
      if (!had || fu_out_[static_cast<size_t>(f)] != e.payload) {
        fu_out_[static_cast<size_t>(f)] = e.payload;
        on_fu_changed(f, gstep, e.slot);
      }
    } else {
      const RegId r = s.a;
      if (regs_[static_cast<size_t>(r)] != e.payload) {
        regs_[static_cast<size_t>(r)] = e.payload;
        on_reg_changed(r, gstep, e.slot);
      }
    }
  }

  void drain(int64_t limit_key) {
    while (!heap_.empty() && heap_.top().key < limit_key) {
      const Ev e = heap_.top();
      heap_.pop();
      const int64_t gstep = e.key / 8;
      if (e.type == kEvFire) {
        if (fired_key_[static_cast<size_t>(e.slot)] == e.key) continue;
        fired_key_[static_cast<size_t>(e.slot)] = e.key;
        ++firings_;
        fire(e.slot, gstep);
      } else {
        apply(e, gstep);
      }
    }
  }

  // ---- members -------------------------------------------------------------

  const Netlist& nl_;
  std::span<const std::vector<int64_t>> inputs_;
  const AllocProblem& prob_;
  const Cdfg& g_;
  const int L_;
  const int iterations_;
  const int64_t total_;

  std::vector<Slot> slots_;
  std::vector<int64_t> sched_key_;  // dedup: key currently scheduled
  std::vector<int64_t> fired_key_;  // dedup: key last fired
  std::vector<NodeId> input_nodes_;
  std::vector<NodeId> output_nodes_;
  std::vector<int> port_index_;

  std::vector<std::vector<int>> reg_readers_, reg_writers_;
  std::vector<std::vector<int>> fu_readers_next_, fu_readers_same_;
  std::vector<std::vector<int>> fu_writers_;
  std::vector<std::vector<int>> port_readers_;

  std::vector<int64_t> regs_, fu_out_, port_val_;
  std::vector<char> fu_has_, port_ok_;

  std::priority_queue<Ev, std::vector<Ev>, EvAfter> heap_;
  SimResult result_;
  long firings_ = 0, wakes_ = 0, heap_peak_ = 0;
};

}  // namespace

SimResult simulate_events(const Netlist& nl,
                          std::span<const std::vector<int64_t>> inputs,
                          std::span<const int64_t> initial_states,
                          int iterations, SimTrace* trace,
                          EventSimStats* stats) {
  EventSim sim(nl, inputs, initial_states, iterations);
  return sim.run(trace, stats);
}

std::string diff_sim_engines(const Netlist& nl,
                             std::span<const std::vector<int64_t>> inputs,
                             std::span<const int64_t> initial_states,
                             int iterations) {
  SimTrace full_trace, event_trace;
  const SimResult full =
      simulate(nl, inputs, initial_states, iterations, &full_trace);
  const SimResult event =
      simulate_events(nl, inputs, initial_states, iterations, &event_trace);
  const Cdfg& g = nl.binding().prob().cdfg();
  std::ostringstream os;
  for (int i = 0; i < iterations; ++i) {
    const auto& want = full.outputs[static_cast<size_t>(i)];
    const auto& got = event.outputs[static_cast<size_t>(i)];
    for (size_t k = 0; k < want.size(); ++k)
      if (want[k] != got[k]) {
        os << "iteration " << i << ", output '"
           << g.node(g.output_nodes()[k]).name
           << "': event=" << got[k] << " full-eval=" << want[k];
        return os.str();
      }
  }
  if (full_trace.regs.size() != event_trace.regs.size()) {
    os << "trace lengths differ: event=" << event_trace.regs.size()
       << " full-eval=" << full_trace.regs.size();
    return os.str();
  }
  for (size_t gs = 0; gs < full_trace.regs.size(); ++gs)
    for (size_t r = 0; r < full_trace.regs[gs].size(); ++r)
      if (full_trace.regs[gs][r] != event_trace.regs[gs][r]) {
        os << "global step " << gs << ", r" << r
           << ": event=" << event_trace.regs[gs][r]
           << " full-eval=" << full_trace.regs[gs][r];
        return os.str();
      }
  return {};
}

std::string random_engine_diff(const Netlist& nl, int iterations,
                               uint64_t seed) {
  const Cdfg& g = nl.binding().prob().cdfg();
  Rng rng(seed);
  auto rnd = [&] { return static_cast<int64_t>(rng.next() % 2001) - 1000; };
  std::vector<std::vector<int64_t>> inputs(
      static_cast<size_t>(iterations) + 1,
      std::vector<int64_t>(g.input_nodes().size(), 0));
  for (auto& vec : inputs)
    for (auto& v : vec) v = rnd();
  std::vector<int64_t> states(g.state_nodes().size(), 0);
  for (auto& v : states) v = rnd();
  return diff_sim_engines(nl, inputs, states, iterations);
}

}  // namespace salsa
