// Structural Verilog emission of an allocated datapath: registers with
// load-enable schedules, ALU/multiplier instances with per-step operation
// selects, per-pin input multiplexers (case over the control-step counter),
// and the modulo-L step counter acting as the controller. The emitted module
// is a faithful RTL rendering of the netlist the simulator executes.
#pragma once

#include <string>

#include "datapath/netlist.h"

namespace salsa {

/// Emits one synthesisable Verilog-2001 module named `module_name`.
std::string to_verilog(const Netlist& nl, const std::string& module_name,
                       int width = 16);

}  // namespace salsa
