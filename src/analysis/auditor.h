// SalsaCheck: a search-time invariant auditor over SearchEngine move
// transactions. Installed as the engine's SearchObserver (see
// core/search_engine.h), it proves the incremental machinery honest on
// every audited transaction:
//
//   (a) the working binding satisfies every rule of the extended binding
//       model (salsa::verify());
//   (b) the refcounted connection index, the FU/register use refcounts, the
//       occupancy grid and the cost breakdown all equal a from-scratch
//       rebuild (SearchEngine::index_matches_rebuild);
//   (c) the cost recomputed from scratch matches the incrementally
//       maintained total, and the committed delta equals the exact
//       difference of totals — no tolerance, the engine recomputes the
//       weighted sum from integer counts so equality must be bitwise;
//   (d) an FNV-1a digest of the canonical binding serialization taken
//       before the move equals the digest after its undo (rollback) or
//       after an infeasible proposal (abort), proving byte-identical
//       restoration;
//   (e) the packed occupancy bitplanes (util/bitplane.h) agree bit-for-bit
//       with the scalar identity grids after every commit — the
//       packed-vs-scalar differential check of the word-masked kernels.
//
// A violation throws salsa::Error with the failing check and transaction
// number. Checked mode is enabled through AllocatorOptions::checked (or
// SALSA_CHECK=1 in the environment — see core/allocator.h); the observer
// hooks themselves are compiled in always and cost one null check when off.
#pragma once

#include <cstdint>
#include <string>

#include "core/search_engine.h"

namespace salsa {

struct AuditorOptions {
  /// Audit every Nth transaction in full (1 = every transaction). The
  /// digest/verify/rebuild checks are O(design) each, so a full audit of
  /// every transaction turns an O(move footprint) search step into an
  /// O(design) one; raise this to spot-check long searches.
  long every = 1;
  /// Large-design auto-sampling: when `every` is 1 (audit everything) and
  /// the design has more than this many operations, the auditor instead
  /// audits every ops/64-th transaction — the O(design) battery amortizes
  /// to O(64) per transaction, keeping audited searches usable on the
  /// generated 10k+-op scaling corpus. An explicit `every` > 1 wins over
  /// the auto rate; 0 disables sampling entirely (exact mode — what
  /// SALSA_CHECK=full / CheckMode::kAuditFull selects). Sampling is by
  /// deterministic transaction index, never by RNG, so an audited run's
  /// trajectory is byte-identical to an unaudited one. Corruption landing
  /// between audited transactions is still caught: drift in the persistent
  /// structures (index refcounts, occupancy, cost counters) survives until
  /// the next audited commit's rebuild cross-check fires on it (the
  /// mutation test in tests/test_audit_scaling.cpp proves this).
  long sample_threshold_ops = 2048;
  bool verify_binding = true;  ///< check (a)
  bool check_index = true;     ///< check (b)
  bool check_cost = true;      ///< check (c)
  bool check_digest = true;    ///< check (d)
  /// Check (e): after a commit, the packed busy bitplanes must agree
  /// bit-for-bit with the scalar identity grids
  /// (Occupancy::planes_match_grids) — the packed-vs-scalar differential
  /// that pins the word-masked kernels to the reference representation.
  /// Cheaper than the O(design) battery (word compares, no rebuild) but
  /// still O(resources x steps), so it follows the same sampling: every
  /// commit below the size threshold, audited commits only once
  /// large-design sampling engages.
  bool check_bitplanes = true;
};

struct AuditorStats {
  long txns = 0;       ///< transactions observed (feasible or not)
  long audited = 0;    ///< transactions fully audited
  long commits = 0;
  long rollbacks = 0;
  long aborts = 0;     ///< infeasible proposals observed
  long speculations = 0;  ///< speculative scorings observed (pipeline)
  long discards = 0;      ///< invalidated speculations observed (pipeline)
};

class InvariantAuditor final : public SearchObserver {
 public:
  explicit InvariantAuditor(AuditorOptions opts = {}) : opts_(opts) {}

  const AuditorStats& stats() const { return stats_; }

  /// Effective audit period after the first transaction resolved the
  /// large-design sampling rate (0 until then); > 1 means sampling or an
  /// explicit `every` throttle is active.
  long effective_every() const { return effective_every_; }

  /// True once large-design auto-sampling engaged (never for an explicit
  /// `every` throttle or a design at/below the threshold).
  bool sampling() const { return sampling_; }

  // SearchObserver:
  void on_txn_begin(const SearchEngine& eng) override;
  void on_txn_abort(const SearchEngine& eng) override;
  void on_commit(const SearchEngine& eng, double delta) override;
  void on_rollback(const SearchEngine& eng) override;
  /// Speculative scoring on a worker engine (its transaction still open):
  /// under the same `every` throttle, cross-checks the worker's incremental
  /// breakdown against a from-scratch evaluate_cost — the speculative delta
  /// is derived from those counts, so this proves the speculative score
  /// honest. Called serialized by the pipeline (core/speculate.h), possibly
  /// from pool threads.
  void on_speculate(const SearchEngine& worker, double delta) override;
  void on_discard(const SearchEngine& eng) override;

 private:
  [[noreturn]] void violation(const std::string& what) const;

  /// Resolves `effective_every_` on first contact with an engine: an
  /// explicit opts_.every > 1 wins; otherwise designs above
  /// sample_threshold_ops audit every ops/64-th transaction (see
  /// AuditorOptions). Idempotent after the first call.
  void resolve_every(const SearchEngine& eng);

  AuditorOptions opts_;
  AuditorStats stats_;
  long effective_every_ = 0;     ///< resolved audit period; 0 = not yet
  bool sampling_ = false;        ///< large-design auto-sampling engaged
  bool auditing_ = false;        ///< current transaction is audited
  uint64_t digest_before_ = 0;   ///< binding digest at txn begin
  CostBreakdown cost_before_{};  ///< incremental breakdown at txn begin
};

}  // namespace salsa
