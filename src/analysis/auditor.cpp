#include "analysis/auditor.h"

#include <sstream>

#include "analysis/digest.h"
#include "core/verify.h"

namespace salsa {

void InvariantAuditor::violation(const std::string& what) const {
  std::ostringstream os;
  os << "SalsaCheck violation at transaction " << stats_.txns << ": " << what;
  fail(os.str());
}

void InvariantAuditor::resolve_every(const SearchEngine& eng) {
  if (effective_every_ != 0) return;
  effective_every_ = opts_.every < 1 ? 1 : opts_.every;
  const long ops =
      static_cast<long>(eng.prob().cdfg().operations().size());
  if (effective_every_ == 1 && opts_.sample_threshold_ops > 0 &&
      ops > opts_.sample_threshold_ops) {
    // ops/64: each audited transaction's O(design) battery is spread over
    // the ~ops/64 transactions between audits, so the amortized audit cost
    // per transaction stays a constant multiple of the move itself no
    // matter how large the design grows.
    effective_every_ = ops / 64;
    sampling_ = true;
  }
}

void InvariantAuditor::on_txn_begin(const SearchEngine& eng) {
  resolve_every(eng);
  ++stats_.txns;
  auditing_ = effective_every_ <= 1 || stats_.txns % effective_every_ == 1;
  if (!auditing_) return;
  ++stats_.audited;
  if (opts_.check_digest) digest_before_ = digest_binding(eng.binding());
  cost_before_ = eng.cost();
}

void InvariantAuditor::on_txn_abort(const SearchEngine& eng) {
  ++stats_.aborts;
  if (!auditing_) return;
  if (opts_.check_digest && digest_binding(eng.binding()) != digest_before_)
    violation("infeasible proposal mutated the binding");
  if (eng.total() != cost_before_.total)
    violation("infeasible proposal changed the incremental total");
}

void InvariantAuditor::on_commit(const SearchEngine& eng, double delta) {
  ++stats_.commits;
  if (opts_.check_bitplanes && (!sampling_ || auditing_)) {
    // Below the sampling threshold this runs on every commit, not just
    // audited ones: it is far cheaper than the O(design) battery and a
    // plane that drifted from the grids between audited transactions would
    // otherwise be re-synchronized by the next rebuild-based check. On
    // sampled large designs even these O(resources x steps) word compares
    // would dominate the move loop, so they ride the audit sample — plane
    // drift is persistent state and still caught at the next audited
    // commit.
    std::string why;
    if (!eng.occupancy_planes_match(&why))
      violation("occupancy bitplanes diverged from the scalar grids: " + why);
  }
  if (!auditing_) return;
  if (opts_.verify_binding) {
    const auto bad = verify(eng.binding());
    if (!bad.empty()) {
      std::string what = "committed binding is illegal:";
      for (const auto& m : bad) what += "\n  - " + m;
      violation(what);
    }
  }
  if (opts_.check_index) {
    std::string why;
    if (!eng.index_matches_rebuild(&why))
      violation("derived state drifted after commit: " + why);
  }
  if (opts_.check_cost) {
    const CostBreakdown full = evaluate_cost(eng.binding());
    const CostBreakdown& inc = eng.cost();
    if (full.fus_used != inc.fus_used || full.regs_used != inc.regs_used ||
        full.connections != inc.connections || full.muxes != inc.muxes ||
        full.total != inc.total) {
      std::ostringstream os;
      os << "incremental cost breakdown diverged from evaluate_cost: "
         << "incremental (fu " << inc.fus_used << ", reg " << inc.regs_used
         << ", conn " << inc.connections << ", mux " << inc.muxes << ", total "
         << inc.total << ") vs full (fu " << full.fus_used << ", reg "
         << full.regs_used << ", conn " << full.connections << ", mux "
         << full.muxes << ", total " << full.total << ")";
      violation(os.str());
    }
    // The engine defines the delta as the weighted sum of the integer
    // component diffs (baseline-independent — see SearchEngine::propose),
    // so the audit recomputes it the same way from the from-scratch counts.
    const CostWeights& w = eng.prob().weights();
    const double expected =
        w.fu * (full.fus_used - cost_before_.fus_used) +
        w.reg * (full.regs_used - cost_before_.regs_used) +
        w.mux * (full.muxes - cost_before_.muxes) +
        w.conn * (full.connections - cost_before_.connections);
    if (expected != delta) {
      std::ostringstream os;
      os << "committed delta " << delta << " does not equal the exact "
         << "from-scratch difference " << expected;
      violation(os.str());
    }
  }
}

void InvariantAuditor::on_rollback(const SearchEngine& eng) {
  ++stats_.rollbacks;
  if (!auditing_) return;
  if (opts_.check_digest && digest_binding(eng.binding()) != digest_before_)
    violation("rollback did not restore the binding byte-identically");
  if (eng.total() != cost_before_.total)
    violation("rollback did not restore the incremental total");
}

void InvariantAuditor::on_speculate(const SearchEngine& worker, double delta) {
  resolve_every(worker);
  ++stats_.speculations;
  const bool audit =
      effective_every_ <= 1 || stats_.speculations % effective_every_ == 1;
  if (!audit || !opts_.check_cost) return;
  // The worker's transaction is still open: its incrementally maintained
  // breakdown must equal a from-scratch evaluation of the speculatively
  // mutated binding. The speculative delta is the weighted sum of the
  // worker's component diffs, so matching counts prove the score honest.
  if (!worker.matches_full_eval()) {
    std::ostringstream os;
    os << "speculative scoring (delta " << delta
       << ") diverged from a from-scratch evaluation";
    violation(os.str());
  }
}

void InvariantAuditor::on_discard(const SearchEngine&) { ++stats_.discards; }

}  // namespace salsa
