// Canonical binding digests for the SalsaCheck subsystem (see
// src/analysis/auditor.h). A binding is hashed with FNV-1a over a canonical
// field-by-field serialization — operations in node order (fu, swap), then
// storages in id order (per-segment cell lists as (reg, parent, via)
// triples, then the read→cell table). Two bindings of the same problem
// digest equal iff they are byte-identical (operator== equal), so digests
// taken before a move transaction and after its undo prove exact
// restoration, and per-restart digest streams compared across thread
// counts prove the parallel runtime's determinism claim.
//
// binding_json() renders the same canonical fields as a JSON document; the
// fuzzer dumps it (together with the seed) as the failure artifact CI
// uploads.
#pragma once

#include <cstdint>
#include <string>

#include "core/binding.h"
#include "core/cost.h"

namespace salsa {

/// Incremental FNV-1a (64-bit) hasher. Multi-byte integers are fed in a
/// fixed little-endian order so digests are stable across platforms.
class Fnv1a {
 public:
  static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr uint64_t kPrime = 0x100000001b3ull;

  void byte(uint8_t b) {
    h_ = (h_ ^ b) * kPrime;
  }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) byte(static_cast<uint8_t>(v >> (8 * i)));
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<uint8_t>(v >> (8 * i)));
  }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  /// Bit pattern of a double (all cost totals are exact in this codebase,
  /// so bit equality is the right notion).
  void f64(double v);

  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = kOffsetBasis;
};

/// Feeds the canonical serialization of `b` into `h`.
void digest_binding(Fnv1a& h, const Binding& b);
/// FNV-1a digest of the canonical serialization of `b`.
uint64_t digest_binding(const Binding& b);

/// Feeds a cost breakdown (counts plus the weighted total's bit pattern).
void digest_cost(Fnv1a& h, const CostBreakdown& c);

/// The canonical binding fields as a self-contained JSON document (ops,
/// cells, read tables, cost breakdown, digest). Stable field order; used
/// for fuzzer failure artifacts and salsa_audit --dump.
std::string binding_json(const Binding& b);

}  // namespace salsa
