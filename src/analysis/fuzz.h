// Move fuzzer: seeded random transaction sequences driven through a
// SearchEngine under the SalsaCheck invariant auditor. Each iteration picks
// a move kind (uniformly by default, so the rare value-level moves and the
// frequently-infeasible ones get exercised — infeasible proposals are the
// "illegal" sequences and must leave no trace), proposes it, and commits or
// rolls back by a coin flip. Every audited transaction pays the full
// check battery (see analysis/auditor.h); a violation is reported with the
// reproducing seed and, when an artifact directory is configured, a JSON
// dump of the binding the engine held when the audit fired — the artifact
// CI uploads on failure.
//
// Deterministic by construction: (problem, FuzzParams) fully determine the
// trajectory, so a CI failure replays locally from the printed seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/auditor.h"
#include "core/moves.h"
#include "core/resources.h"
#include "core/speculate.h"

namespace salsa {

struct FuzzParams {
  uint64_t seed = 1;
  /// Feasible transactions to drive (commits + rollbacks).
  long transactions = 10000;
  double commit_prob = 0.5;
  /// Pick move kinds uniformly instead of by MoveConfig weight (hits every
  /// kind, including ones a tuned search would rarely draw). When false,
  /// `moves` weights are used.
  bool uniform_kinds = true;
  MoveConfig moves = MoveConfig::salsa_default();
  AuditorOptions audit;
  /// Give up after transactions * this many proposals (feasibility can be
  /// scarce on tight problems).
  long proposal_cap_factor = 50;
  /// Every this many transactions, reset the engine to the best binding
  /// seen (exercises reset_to under audit); 0 disables.
  long reset_every = 2500;
  /// On violation, write "<name>-seed<seed>.json" (seed, progress, error,
  /// binding dump) into this directory. Empty = no artifact.
  std::string artifact_dir;
  std::string name = "fuzz";
  /// Mutation testing (0 = off): deliberately break the undo of the Nth
  /// rollback (SearchEngine::inject_broken_undo_for_test). The auditor's
  /// digest check must catch it — the regression proving the audit wall
  /// actually detects silent state drift (see DESIGN.md).
  long inject_broken_undo_at = 0;
};

struct FuzzResult {
  bool ok = true;
  std::string failure;        ///< auditor/engine error message when !ok
  std::string artifact_path;  ///< written artifact, empty if none
  long transactions = 0;      ///< feasible transactions driven
  long proposals = 0;
  long commits = 0;
  long rollbacks = 0;
  long infeasible = 0;
  AuditorStats audit;
};

/// Runs the fuzzer on one problem. Does not throw on audit violations —
/// they are reported through FuzzResult (and as an artifact file).
FuzzResult run_move_fuzz(const AllocProblem& prob, const FuzzParams& params);

/// Speculation fuzzer parameters: seeded k-way proposal batches driven
/// through a ProposalPipeline, checked against a sequential (k = 1)
/// reference run of the same seed. Acceptance is a function of the
/// candidate alone (its delta and its private RNG stream), so both runs
/// make identical decisions as long as the speculative run serves the
/// exact candidates the sequential one does.
struct SpecFuzzParams {
  uint64_t seed = 1;
  /// Candidates served per run (feasible and infeasible).
  long steps = 4000;
  int k = 8;        ///< speculative batch width
  int threads = 2;  ///< scoring thread budget
  /// Probability of keeping a feasible uphill candidate (downhill ones are
  /// always kept, so the runs walk a realistic trajectory).
  double accept_prob = 0.25;
  MoveConfig moves = MoveConfig::salsa_default();
  /// Auditor installed on both engines: commits pay the usual battery and
  /// every audited speculation re-checks its worker against a from-scratch
  /// evaluation (InvariantAuditor::on_speculate).
  AuditorOptions audit;
  /// Reset the pipeline to the best binding seen every this many commits
  /// (exercises ProposalPipeline::reset_to and worker re-sync); 0 disables.
  long reset_every = 200;
  /// On failure, write "<name>-seed<seed>.json" here. Empty = no artifact.
  std::string artifact_dir;
  std::string name = "spec";
  /// Mutation testing (0 = off): let the Nth footprint-conflict hit slip
  /// through uninvalidated (ProposalPipeline::
  /// inject_skip_footprint_check_for_test). The replay cross-check or the
  /// trajectory comparison must catch the stale score.
  long skip_footprint_check_at = 0;
};

struct SpecFuzzResult {
  bool ok = true;
  std::string failure;        ///< error / divergence message when !ok
  std::string artifact_path;  ///< written artifact, empty if none
  long commits = 0;           ///< commits in the speculative run
  /// Index of the first diverging commit between the sequential and the
  /// speculative trajectory; -1 when the streams are identical.
  long divergence = -1;
  SpecStats spec;  ///< speculative run's hit/discard counters
};

/// Runs the speculative pipeline against its sequential reference on one
/// problem. Does not throw — cross-check violations (SALSA_CHECK on
/// replay), auditor violations and trajectory divergences are all reported
/// through SpecFuzzResult (and as an artifact file).
SpecFuzzResult run_speculation_fuzz(const AllocProblem& prob,
                                    const SpecFuzzParams& params);

struct SegmentDiffResult {
  bool ok = true;
  std::string failure;    ///< first divergence / engine error when !ok
  long transactions = 0;  ///< feasible transactions compared
  long commits = 0;       ///< transactions that committed on both engines
  long windowed = 0;      ///< transactions that took a non-whole window
  /// Index (0-based transaction count) of the first divergence; -1 = none.
  long divergence = -1;
};

/// Window-vs-whole differential for segment-windowed transactions
/// (salsa_audit --segment): drives two engines — one with segment windows
/// on (the default), one forced to whole-storage walks via
/// SearchEngine::set_segment_windows(false) — through the identical
/// proposal/commit/rollback stream and cross-checks after every
/// transaction: the proposal deltas must be bit-identical, the cost
/// breakdowns must match integer for integer, committed bindings must
/// digest-match, and the windowed engine's connection index must match a
/// from-scratch rebuild. This is the proof obligation of the windowed
/// claim-staging walk: identical cost integers, not merely close ones.
SegmentDiffResult run_segment_diff(const AllocProblem& prob,
                                   const FuzzParams& params);

/// A named standard fuzz target: the benchmark CDFG scheduled and wrapped
/// into an AllocProblem the way the reproduction experiments do. Valid
/// names: "ewf" (17 steps), "dct" (9 steps), "random" (24 ops, 12 steps).
/// The object owns the CDFG/schedule/problem chain.
class FuzzTarget {
 public:
  /// Throws salsa::Error for an unknown name. `extra_regs` loosens the
  /// register budget above the lifetime minimum.
  FuzzTarget(const std::string& name, int extra_regs = 2);
  ~FuzzTarget();
  FuzzTarget(const FuzzTarget&) = delete;
  FuzzTarget& operator=(const FuzzTarget&) = delete;

  const AllocProblem& prob() const { return *prob_; }
  const std::string& name() const { return name_; }

  /// All valid target names, in reporting order.
  static const std::vector<std::string>& names();

 private:
  std::string name_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
  AllocProblem* prob_ = nullptr;  // owned by impl_
};

}  // namespace salsa
