#include "analysis/digest.h"

#include <bit>
#include <sstream>

#include "core/lifetime.h"

namespace salsa {

void Fnv1a::f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

void digest_binding(Fnv1a& h, const Binding& b) {
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();

  // Operations, in node order. A leading count per section keeps the
  // serialization prefix-free across problem shapes.
  h.u32(static_cast<uint32_t>(g.operations().size()));
  for (NodeId n : g.operations()) {
    const OpBind& ob = b.op(n);
    h.i32(n);
    h.i32(ob.fu);
    h.byte(ob.swap ? 1 : 0);
  }

  h.u32(static_cast<uint32_t>(lt.num_storages()));
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const StorageBinding& sb = b.sto(sid);
    h.u32(static_cast<uint32_t>(sb.cells.size()));
    for (const auto& seg : sb.cells) {
      h.u32(static_cast<uint32_t>(seg.size()));
      for (const Cell& c : seg) {
        h.i32(c.reg);
        h.i32(c.parent);
        h.i32(c.via);
      }
    }
    h.u32(static_cast<uint32_t>(sb.read_cell.size()));
    for (int rc : sb.read_cell) h.i32(rc);
  }
}

uint64_t digest_binding(const Binding& b) {
  Fnv1a h;
  digest_binding(h, b);
  return h.value();
}

void digest_cost(Fnv1a& h, const CostBreakdown& c) {
  h.i32(c.fus_used);
  h.i32(c.regs_used);
  h.i32(c.connections);
  h.i32(c.muxes);
  h.f64(c.total);
}

std::string binding_json(const Binding& b) {
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  std::ostringstream os;
  os << "{\n  \"ops\": [";
  bool first = true;
  for (NodeId n : g.operations()) {
    const OpBind& ob = b.op(n);
    os << (first ? "" : ",") << "\n    {\"node\": " << n
       << ", \"fu\": " << ob.fu << ", \"swap\": " << (ob.swap ? "true" : "false")
       << "}";
    first = false;
  }
  os << "\n  ],\n  \"storages\": [";
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const StorageBinding& sb = b.sto(sid);
    os << (sid ? "," : "") << "\n    {\"name\": \"" << lt.storage(sid).name
       << "\", \"cells\": [";
    for (size_t seg = 0; seg < sb.cells.size(); ++seg) {
      os << (seg ? ", " : "") << "[";
      for (size_t ci = 0; ci < sb.cells[seg].size(); ++ci) {
        const Cell& c = sb.cells[seg][ci];
        os << (ci ? ", " : "") << "{\"reg\": " << c.reg
           << ", \"parent\": " << c.parent << ", \"via\": " << c.via << "}";
      }
      os << "]";
    }
    os << "], \"read_cell\": [";
    for (size_t ri = 0; ri < sb.read_cell.size(); ++ri)
      os << (ri ? ", " : "") << sb.read_cell[ri];
    os << "]}";
  }
  const CostBreakdown cost = evaluate_cost(b);
  os << "\n  ],\n  \"cost\": {\"fus_used\": " << cost.fus_used
     << ", \"regs_used\": " << cost.regs_used
     << ", \"connections\": " << cost.connections
     << ", \"muxes\": " << cost.muxes << ", \"total\": " << cost.total
     << "},\n  \"digest\": \"" << std::hex << digest_binding(b) << std::dec
     << "\"\n}\n";
  return os.str();
}

}  // namespace salsa
