// Determinism audit: turns the parallel runtime's "byte-identical results
// for every thread count" claim (DESIGN.md, "Parallel search runtime") into
// a checked property. allocate() is replayed once per requested thread
// count; for each run the audit records the per-restart binding digest
// stream (AllocatorOptions::restart_digests, emitted in restart order) and
// a digest of the final result (winning binding + cost breakdown + summed
// search stats, doubles hashed by bit pattern). Any divergence between two
// thread counts — a differing restart digest pinpoints *which* restart's
// trajectory depended on scheduling — fails the audit with a description.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/allocator.h"

namespace salsa {

struct DeterminismOptions {
  /// Thread counts to replay allocate() at. The first entry is the
  /// reference the others are diffed against.
  std::vector<int> thread_counts{1, 2, 8};
};

struct DeterminismReport {
  bool ok = true;
  /// Human-readable description of the first divergence (empty when ok).
  std::string detail;
  std::vector<int> thread_counts;
  /// restart_streams[i][r]: digest of restart r's binding at thread_counts[i].
  std::vector<std::vector<uint64_t>> restart_streams;
  /// result_digests[i]: digest of the full AllocationResult at
  /// thread_counts[i].
  std::vector<uint64_t> result_digests;
};

/// Digest of a complete allocation result: winning binding, point-to-point
/// cost, mux-merge outcome and accumulated search stats.
uint64_t digest_allocation(const AllocationResult& result);

/// Replays allocate(prob, opts) at each thread count and diffs the digest
/// streams. `opts.parallelism` and `opts.restart_digests` are overridden
/// per run; every other option (seeds, restarts, checked mode) is used as
/// given, so the audit can run with or without the invariant auditor.
DeterminismReport audit_determinism(const AllocProblem& prob,
                                    AllocatorOptions opts,
                                    const DeterminismOptions& dopts = {});

}  // namespace salsa
