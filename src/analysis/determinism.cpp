#include "analysis/determinism.h"

#include <sstream>

#include "analysis/digest.h"

namespace salsa {

uint64_t digest_allocation(const AllocationResult& result) {
  Fnv1a h;
  digest_binding(h, result.binding);
  digest_cost(h, result.cost);
  h.i32(result.merging.muxes_before);
  h.i32(result.merging.muxes_after);
  const ImproveStats& s = result.stats;
  h.i32(s.trials);
  h.u64(static_cast<uint64_t>(s.attempted));
  h.u64(static_cast<uint64_t>(s.accepted));
  h.u64(static_cast<uint64_t>(s.uphill));
  h.u64(static_cast<uint64_t>(s.kicks));
  for (const MoveKindStats& mk : s.by_kind) {
    h.u64(static_cast<uint64_t>(mk.attempted));
    h.u64(static_cast<uint64_t>(mk.accepted));
    h.f64(mk.delta_sum);
    h.f64(mk.accepted_delta_sum);
  }
  return h.value();
}

DeterminismReport audit_determinism(const AllocProblem& prob,
                                    AllocatorOptions opts,
                                    const DeterminismOptions& dopts) {
  DeterminismReport rep;
  rep.thread_counts = dopts.thread_counts;
  SALSA_CHECK_MSG(!dopts.thread_counts.empty(),
                  "determinism audit needs at least one thread count");

  for (int tc : dopts.thread_counts) {
    std::vector<uint64_t> stream;
    opts.parallelism = Parallelism{tc};
    opts.restart_digests = &stream;
    const AllocationResult result = allocate(prob, opts);
    rep.restart_streams.push_back(std::move(stream));
    rep.result_digests.push_back(digest_allocation(result));
  }

  const auto& ref_stream = rep.restart_streams.front();
  for (size_t i = 1; i < rep.thread_counts.size() && rep.ok; ++i) {
    const auto& stream = rep.restart_streams[i];
    if (stream.size() != ref_stream.size()) {
      rep.ok = false;
      std::ostringstream os;
      os << "restart count diverged: " << ref_stream.size() << " at threads "
         << rep.thread_counts[0] << " vs " << stream.size() << " at threads "
         << rep.thread_counts[i];
      rep.detail = os.str();
      break;
    }
    for (size_t r = 0; r < stream.size(); ++r) {
      if (stream[r] != ref_stream[r]) {
        rep.ok = false;
        std::ostringstream os;
        os << "restart " << r << " digest diverged between threads "
           << rep.thread_counts[0] << " and " << rep.thread_counts[i]
           << ": its trajectory depended on which thread ran it";
        rep.detail = os.str();
        break;
      }
    }
    if (rep.ok && rep.result_digests[i] != rep.result_digests[0]) {
      rep.ok = false;
      std::ostringstream os;
      os << "final result digest diverged between threads "
         << rep.thread_counts[0] << " and " << rep.thread_counts[i]
         << " despite identical restart streams (reduction order bug)";
      rep.detail = os.str();
    }
  }
  return rep;
}

}  // namespace salsa
