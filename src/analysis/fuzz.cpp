#include "analysis/fuzz.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "analysis/digest.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "bench_suite/random_cdfg.h"
#include "core/initial.h"
#include "core/search_engine.h"
#include "core/speculate.h"
#include "sched/fu_search.h"
#include "util/rng.h"

namespace salsa {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Writes the failure artifact; best effort (an unwritable directory must
// not mask the underlying violation).
std::string write_artifact(const FuzzParams& params, const FuzzResult& res,
                           const Binding& binding) {
  std::error_code ec;
  std::filesystem::create_directories(params.artifact_dir, ec);
  const std::string path = params.artifact_dir + "/" + params.name + "-seed" +
                           std::to_string(params.seed) + ".json";
  std::ofstream out(path);
  if (!out) return {};
  out << "{\n  \"target\": \"" << params.name << "\",\n  \"seed\": "
      << params.seed << ",\n  \"transactions_done\": " << res.transactions
      << ",\n  \"proposals\": " << res.proposals << ",\n  \"error\": \""
      << json_escape(res.failure) << "\",\n  \"binding\": "
      << binding_json(binding) << "}\n";
  return out ? path : std::string{};
}

}  // namespace

FuzzResult run_move_fuzz(const AllocProblem& prob, const FuzzParams& params) {
  FuzzResult res;
  InvariantAuditor auditor(params.audit);
  // Placement and move streams are derived from the one user seed.
  Binding start = initial_allocation(
      prob, InitialOptions{.seed = derive_seed(params.seed, 0)});
  SearchEngine eng(start);
  eng.set_observer(&auditor);
  Rng rng(derive_seed(params.seed, 1));

  Binding best = start;
  double best_cost = eng.total();
  const long cap = params.transactions * params.proposal_cap_factor;
  try {
    while (res.transactions < params.transactions && res.proposals < cap) {
      ++res.proposals;
      const MoveKind kind =
          params.uniform_kinds
              ? static_cast<MoveKind>(rng.uniform(kNumMoveKinds))
              : params.moves.pick(rng);
      const auto delta = eng.propose(kind, rng);
      if (!delta) {
        ++res.infeasible;
        continue;
      }
      ++res.transactions;
      if (rng.chance(params.commit_prob)) {
        eng.commit();
        ++res.commits;
        if (eng.total() < best_cost) {
          best = eng.binding();
          best_cost = eng.total();
        }
      } else {
        if (params.inject_broken_undo_at > 0 &&
            res.rollbacks + 1 == params.inject_broken_undo_at)
          eng.inject_broken_undo_for_test();
        eng.rollback();
        ++res.rollbacks;
      }
      if (params.reset_every > 0 &&
          res.transactions % params.reset_every == 0) {
        eng.reset_to(best);
      }
    }
  } catch (const Error& e) {
    res.ok = false;
    res.failure = e.what();
    res.audit = auditor.stats();
    if (!params.artifact_dir.empty())
      res.artifact_path = write_artifact(params, res, eng.binding());
    return res;
  }
  res.audit = auditor.stats();
  if (res.transactions < params.transactions) {
    res.ok = false;
    std::ostringstream os;
    os << "fuzzer starved: only " << res.transactions << " of "
       << params.transactions << " feasible transactions in " << res.proposals
       << " proposals";
    res.failure = os.str();
  }
  return res;
}

// --- segment-window differential --------------------------------------------

SegmentDiffResult run_segment_diff(const AllocProblem& prob,
                                   const FuzzParams& params) {
  SegmentDiffResult res;
  Binding start = initial_allocation(
      prob, InitialOptions{.seed = derive_seed(params.seed, 0)});
  SearchEngine win(start);
  SearchEngine whole(start);
  whole.set_segment_windows(false);  // reference: whole-storage walks
  Rng rng(derive_seed(params.seed, 1));
  const long windowed_before = seg_window_hooks::windowed_txns;
  const long cap = params.transactions * params.proposal_cap_factor;
  long proposals = 0;
  auto diverged = [&res](const std::string& what) {
    res.ok = false;
    res.divergence = res.transactions - 1;
    res.failure = what + " at transaction " + std::to_string(res.divergence);
  };
  try {
    while (res.transactions < params.transactions && proposals < cap &&
           res.ok) {
      ++proposals;
      const MoveKind kind =
          params.uniform_kinds
              ? static_cast<MoveKind>(rng.uniform(kNumMoveKinds))
              : params.moves.pick(rng);
      // Both engines draw from identical RNG clones; identical engine
      // states imply identical draws, so the shared stream advances by the
      // windowed engine's copy. Any enumeration drift between the engines
      // shows up as a delta/digest divergence below, never as silent
      // stream skew.
      const bool armed = seg_window_hooks::break_claim_window_after > 0;
      Rng rw = rng;
      Rng rf = rng;
      const auto dw = win.propose(kind, rw);
      const auto df = whole.propose(kind, rf);
      rng = rw;
      // --break-segment-window fires inside the windowed engine's claim
      // staging; force that transaction to commit so the drift it plants
      // must materialize in the cross-checked state (a rollback would
      // restore both the binding and the spliced key cache, proving
      // nothing).
      const bool fired =
          armed && seg_window_hooks::break_claim_window_after == 0;
      if (dw.has_value() != df.has_value()) {
        ++res.transactions;
        diverged(std::string("feasibility diverged (windowed: ") +
                 (dw ? "feasible" : "infeasible") + ", whole: " +
                 (df ? "feasible" : "infeasible") + ")");
        break;
      }
      if (!dw) continue;
      ++res.transactions;
      if (*dw != *df) {
        diverged("proposal delta diverged (windowed " + std::to_string(*dw) +
                 " vs whole " + std::to_string(*df) + ")");
        break;
      }
      if (rng.chance(params.commit_prob) || fired) {
        win.commit();
        whole.commit();
        ++res.commits;
        const CostBreakdown& cw = win.cost();
        const CostBreakdown& cf = whole.cost();
        if (cw.fus_used != cf.fus_used || cw.regs_used != cf.regs_used ||
            cw.connections != cf.connections || cw.muxes != cf.muxes) {
          std::ostringstream os;
          os << "cost integers diverged (windowed fus/regs/conns/muxes "
             << cw.fus_used << "/" << cw.regs_used << "/" << cw.connections
             << "/" << cw.muxes << " vs whole " << cf.fus_used << "/"
             << cf.regs_used << "/" << cf.connections << "/" << cf.muxes
             << ")";
          diverged(os.str());
          break;
        }
        if (digest_binding(win.binding()) != digest_binding(whole.binding())) {
          diverged("binding digests diverged after commit");
          break;
        }
        std::string why;
        if (!win.index_matches_rebuild(&why)) {
          diverged("windowed index diverged from rebuild: " + why);
          break;
        }
      } else {
        win.rollback();
        whole.rollback();
      }
    }
  } catch (const Error& e) {
    res.ok = false;
    if (res.divergence < 0) res.divergence = res.transactions;
    res.failure = std::string("engine check failed: ") + e.what();
  }
  res.windowed = seg_window_hooks::windowed_txns - windowed_before;
  if (res.ok && res.transactions < params.transactions) {
    std::ostringstream os;
    os << "differential starved: only " << res.transactions << " of "
       << params.transactions << " feasible transactions in " << proposals
       << " proposals";
    res.ok = false;
    res.failure = os.str();
  }
  return res;
}

// --- speculation fuzzer -----------------------------------------------------

namespace {

struct SpecStreamEntry {
  long step = 0;
  double delta = 0;
  uint64_t digest = 0;
  friend bool operator==(const SpecStreamEntry&,
                         const SpecStreamEntry&) = default;
};

struct SpecDrive {
  explicit SpecDrive(Binding b) : binding(std::move(b)) {}
  bool ok = true;
  std::string failure;
  std::vector<SpecStreamEntry> stream;
  SpecStats spec;
  long commits = 0;
  uint64_t final_digest = 0;
  Binding binding;  ///< engine state at the end (or at the failure)
};

// Drives one pipeline for params.steps candidates with candidate-local
// acceptance: keep every downhill move, keep uphill moves with probability
// accept_prob drawn from the candidate's own RNG stream. Identical decision
// streams across runs are therefore implied by identical candidate streams.
SpecDrive drive_pipeline(const AllocProblem& prob, const SpecFuzzParams& params,
                         int k, int threads, InvariantAuditor* auditor,
                         long skip_nth) {
  Binding start = initial_allocation(
      prob, InitialOptions{.seed = derive_seed(params.seed, 0)});
  SearchEngine eng(start);
  if (auditor) eng.set_observer(auditor);
  // The differential needs the speculative leg to actually speculate —
  // pin the width past the pipeline's one-core auto-degrade.
  SpeculationConfig sc{k, Parallelism{threads}};
  sc.pin_width = true;
  ProposalPipeline pipe(eng, params.moves, sc, derive_seed(params.seed, 1));
  if (skip_nth > 0) pipe.inject_skip_footprint_check_for_test(skip_nth);
  SpecDrive out(start);
  Binding best = start;
  double best_cost = eng.total();
  try {
    for (long i = 0; i < params.steps; ++i) {
      const ProposalPipeline::Candidate c = pipe.next();
      if (!c.feasible) continue;
      Rng r = c.rng_after;
      const bool accept = c.delta <= 0 || r.chance(params.accept_prob);
      pipe.decide(accept);
      if (!accept) continue;
      ++out.commits;
      out.stream.push_back({c.step, c.delta, digest_binding(eng.binding())});
      if (eng.total() < best_cost) {
        best = eng.binding();
        best_cost = eng.total();
      }
      if (params.reset_every > 0 && out.commits % params.reset_every == 0)
        pipe.reset_to(best);
    }
  } catch (const Error& e) {
    out.ok = false;
    out.failure = e.what();
  }
  out.spec = pipe.spec_stats();
  out.final_digest = digest_binding(eng.binding());
  out.binding = eng.binding();
  return out;
}

std::string write_spec_artifact(const SpecFuzzParams& params,
                                const SpecFuzzResult& res,
                                const Binding& binding) {
  std::error_code ec;
  std::filesystem::create_directories(params.artifact_dir, ec);
  const std::string path = params.artifact_dir + "/" + params.name + "-seed" +
                           std::to_string(params.seed) + ".json";
  std::ofstream out(path);
  if (!out) return {};
  out << "{\n  \"target\": \"" << params.name << "\",\n  \"seed\": "
      << params.seed << ",\n  \"k\": " << params.k << ",\n  \"threads\": "
      << params.threads << ",\n  \"commits\": " << res.commits
      << ",\n  \"divergence\": " << res.divergence << ",\n  \"error\": \""
      << json_escape(res.failure) << "\",\n  \"binding\": "
      << binding_json(binding) << "}\n";
  return out ? path : std::string{};
}

}  // namespace

SpecFuzzResult run_speculation_fuzz(const AllocProblem& prob,
                                    const SpecFuzzParams& params) {
  SpecFuzzResult res;
  InvariantAuditor seq_audit(params.audit);
  InvariantAuditor spec_audit(params.audit);
  const SpecDrive seq = drive_pipeline(prob, params, 1, 1, &seq_audit, 0);
  const SpecDrive spec =
      drive_pipeline(prob, params, params.k, params.threads, &spec_audit,
                     params.skip_footprint_check_at);
  res.commits = spec.commits;
  res.spec = spec.spec;
  if (!seq.ok) {
    res.ok = false;
    res.failure = "sequential reference failed: " + seq.failure;
  } else if (!spec.ok) {
    res.ok = false;
    res.failure = spec.failure;
  } else {
    const size_t n = std::min(seq.stream.size(), spec.stream.size());
    for (size_t i = 0; i < n && res.divergence < 0; ++i)
      if (!(seq.stream[i] == spec.stream[i]))
        res.divergence = static_cast<long>(i);
    if (res.divergence < 0 && seq.stream.size() != spec.stream.size())
      res.divergence = static_cast<long>(n);
    if (res.divergence >= 0) {
      res.ok = false;
      std::ostringstream os;
      os << "speculative trajectory diverged from sequential at commit "
         << res.divergence << " (sequential " << seq.stream.size()
         << " commits, speculative " << spec.stream.size() << ")";
      res.failure = os.str();
    } else if (seq.final_digest != spec.final_digest) {
      res.ok = false;
      res.failure = "final bindings differ despite identical commit streams";
    }
  }
  if (!res.ok && !params.artifact_dir.empty())
    res.artifact_path = write_spec_artifact(params, res, spec.binding);
  return res;
}

// --- standard targets -------------------------------------------------------

struct FuzzTarget::Impl {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Impl(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    sched =
        std::make_unique<Schedule>(schedule_min_fu(*g, HwSpec{}, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

FuzzTarget::FuzzTarget(const std::string& name, int extra_regs) : name_(name) {
  if (name == "ewf") {
    impl_ = std::make_unique<Impl>(make_ewf(), 17, extra_regs);
  } else if (name == "dct") {
    impl_ = std::make_unique<Impl>(make_dct(), 9, extra_regs);
  } else if (name == "random") {
    RandomCdfgParams p;
    p.num_ops = 24;
    p.seed = 5;
    impl_ = std::make_unique<Impl>(make_random_cdfg(p), 12, extra_regs);
  } else {
    fail("unknown fuzz target '" + name + "' (expected ewf, dct or random)");
  }
  prob_ = impl_->prob.get();
}

FuzzTarget::~FuzzTarget() = default;

const std::vector<std::string>& FuzzTarget::names() {
  static const std::vector<std::string> kNames{"ewf", "dct", "random"};
  return kNames;
}

}  // namespace salsa
