#include "analysis/fuzz.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "analysis/digest.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "bench_suite/random_cdfg.h"
#include "core/initial.h"
#include "core/search_engine.h"
#include "sched/fu_search.h"
#include "util/rng.h"

namespace salsa {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Writes the failure artifact; best effort (an unwritable directory must
// not mask the underlying violation).
std::string write_artifact(const FuzzParams& params, const FuzzResult& res,
                           const Binding& binding) {
  std::error_code ec;
  std::filesystem::create_directories(params.artifact_dir, ec);
  const std::string path = params.artifact_dir + "/" + params.name + "-seed" +
                           std::to_string(params.seed) + ".json";
  std::ofstream out(path);
  if (!out) return {};
  out << "{\n  \"target\": \"" << params.name << "\",\n  \"seed\": "
      << params.seed << ",\n  \"transactions_done\": " << res.transactions
      << ",\n  \"proposals\": " << res.proposals << ",\n  \"error\": \""
      << json_escape(res.failure) << "\",\n  \"binding\": "
      << binding_json(binding) << "}\n";
  return out ? path : std::string{};
}

}  // namespace

FuzzResult run_move_fuzz(const AllocProblem& prob, const FuzzParams& params) {
  FuzzResult res;
  InvariantAuditor auditor(params.audit);
  // Placement and move streams are derived from the one user seed.
  Binding start = initial_allocation(
      prob, InitialOptions{.seed = derive_seed(params.seed, 0)});
  SearchEngine eng(start);
  eng.set_observer(&auditor);
  Rng rng(derive_seed(params.seed, 1));

  Binding best = start;
  double best_cost = eng.total();
  const long cap = params.transactions * params.proposal_cap_factor;
  try {
    while (res.transactions < params.transactions && res.proposals < cap) {
      ++res.proposals;
      const MoveKind kind =
          params.uniform_kinds
              ? static_cast<MoveKind>(rng.uniform(kNumMoveKinds))
              : params.moves.pick(rng);
      const auto delta = eng.propose(kind, rng);
      if (!delta) {
        ++res.infeasible;
        continue;
      }
      ++res.transactions;
      if (rng.chance(params.commit_prob)) {
        eng.commit();
        ++res.commits;
        if (eng.total() < best_cost) {
          best = eng.binding();
          best_cost = eng.total();
        }
      } else {
        if (params.inject_broken_undo_at > 0 &&
            res.rollbacks + 1 == params.inject_broken_undo_at)
          eng.inject_broken_undo_for_test();
        eng.rollback();
        ++res.rollbacks;
      }
      if (params.reset_every > 0 &&
          res.transactions % params.reset_every == 0) {
        eng.reset_to(best);
      }
    }
  } catch (const Error& e) {
    res.ok = false;
    res.failure = e.what();
    res.audit = auditor.stats();
    if (!params.artifact_dir.empty())
      res.artifact_path = write_artifact(params, res, eng.binding());
    return res;
  }
  res.audit = auditor.stats();
  if (res.transactions < params.transactions) {
    res.ok = false;
    std::ostringstream os;
    os << "fuzzer starved: only " << res.transactions << " of "
       << params.transactions << " feasible transactions in " << res.proposals
       << " proposals";
    res.failure = os.str();
  }
  return res;
}

// --- standard targets -------------------------------------------------------

struct FuzzTarget::Impl {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Impl(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    sched =
        std::make_unique<Schedule>(schedule_min_fu(*g, HwSpec{}, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

FuzzTarget::FuzzTarget(const std::string& name, int extra_regs) : name_(name) {
  if (name == "ewf") {
    impl_ = std::make_unique<Impl>(make_ewf(), 17, extra_regs);
  } else if (name == "dct") {
    impl_ = std::make_unique<Impl>(make_dct(), 9, extra_regs);
  } else if (name == "random") {
    RandomCdfgParams p;
    p.num_ops = 24;
    p.seed = 5;
    impl_ = std::make_unique<Impl>(make_random_cdfg(p), 12, extra_regs);
  } else {
    fail("unknown fuzz target '" + name + "' (expected ewf, dct or random)");
  }
  prob_ = impl_->prob.get();
}

FuzzTarget::~FuzzTarget() = default;

const std::vector<std::string>& FuzzTarget::names() {
  static const std::vector<std::string> kNames{"ewf", "dct", "random"};
  return kNames;
}

}  // namespace salsa
