#include "io/html_report.h"

#include <map>
#include <sstream>

#include "core/cost.h"
#include "core/mux_merge.h"
#include "core/verify.h"

namespace salsa {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

// Deterministic pastel colour per storage id.
std::string colour_of(int sid) {
  const int hue = (sid * 47) % 360;
  std::ostringstream os;
  os << "hsl(" << hue << ",70%,85%)";
  return os.str();
}

std::string endpoint_label(const Cdfg& g, const FuPool& fus,
                           const Endpoint& e) {
  switch (e.kind) {
    case Endpoint::Kind::kFuOut: return fus.fu(e.id).name;
    case Endpoint::Kind::kRegOut: return "R" + std::to_string(e.id);
    case Endpoint::Kind::kInPort: return "in:" + g.node(e.id).name;
    case Endpoint::Kind::kConstPort: return "const:" + g.node(e.id).name;
  }
  return "?";
}

std::string pin_label(const Cdfg& g, const FuPool& fus, const Pin& p) {
  switch (p.kind) {
    case Pin::Kind::kFuIn0: return fus.fu(p.id).name + ".a";
    case Pin::Kind::kFuIn1: return fus.fu(p.id).name + ".b";
    case Pin::Kind::kRegIn: return "R" + std::to_string(p.id) + ".in";
    case Pin::Kind::kOutPort: return "out:" + g.node(p.id).name;
  }
  return "?";
}

}  // namespace

std::string html_report(const Binding& b, const std::string& title) {
  check_legal(b);
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const Schedule& sched = prob.sched();
  const Lifetimes& lt = prob.lifetimes();
  const int L = sched.length();
  const CostBreakdown cost = evaluate_cost(b);
  const MuxMergeResult merged = merge_muxes(b);
  const Occupancy occ = b.occupancy();

  std::ostringstream os;
  os << "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>"
     << escape(title) << "</title><style>\n"
     << "body{font-family:sans-serif;margin:1.5em}"
     << "table{border-collapse:collapse;margin:1em 0}"
     << "td,th{border:1px solid #999;padding:2px 6px;font-size:12px;"
     << "text-align:center}"
     << "th{background:#eee}.idle{background:#fafafa;color:#bbb}"
     << ".pass{background:#ffe9b3;font-style:italic}"
     << "</style></head><body>\n";
  os << "<h1>" << escape(title) << "</h1>\n";
  os << "<p>" << L << " control steps &middot; " << cost.fus_used
     << " FUs &middot; " << cost.regs_used << " registers &middot; "
     << cost.connections << " connections &middot; <b>" << cost.muxes
     << "</b> equivalent 2-1 muxes (" << merged.muxes_after
     << " after merging) &middot; cost " << cost.total << "</p>\n";

  // ---- FU Gantt -------------------------------------------------------
  os << "<h2>Functional units</h2>\n<table><tr><th></th>";
  for (int t = 0; t < L; ++t) os << "<th>" << t << "</th>";
  os << "</tr>\n";
  for (FuId f = 0; f < prob.fus().size(); ++f) {
    os << "<tr><th>" << escape(prob.fus().fu(f).name) << "</th>";
    for (int t = 0; t < L; ++t) {
      const int user =
          occ.fu_user[static_cast<size_t>(f)][static_cast<size_t>(t)];
      if (user == Occupancy::kFree) {
        os << "<td class=\"idle\">&middot;</td>";
      } else if (user == Occupancy::kPassThrough) {
        os << "<td class=\"pass\">pass</td>";
      } else {
        os << "<td>" << escape(g.node(user).name) << "</td>";
      }
    }
    os << "</tr>\n";
  }
  os << "</table>\n";

  // ---- Register map ---------------------------------------------------
  os << "<h2>Registers</h2>\n<table><tr><th></th>";
  for (int t = 0; t < L; ++t) os << "<th>" << t << "</th>";
  os << "</tr>\n";
  for (RegId r = 0; r < prob.num_regs(); ++r) {
    os << "<tr><th>R" << r << "</th>";
    for (int t = 0; t < L; ++t) {
      const int sid =
          occ.reg_sto[static_cast<size_t>(r)][static_cast<size_t>(t)];
      if (sid < 0) {
        os << "<td class=\"idle\">&middot;</td>";
      } else {
        os << "<td style=\"background:" << colour_of(sid) << "\">"
           << escape(lt.storage(sid).name) << "</td>";
      }
    }
    os << "</tr>\n";
  }
  os << "</table>\n";

  // ---- Multiplexers ----------------------------------------------------
  os << "<h2>Multiplexers (after merging)</h2>\n"
     << "<table><tr><th>feeds</th><th>selects among</th><th>2-1 eq</th></tr>\n";
  for (const MergedMux& m : merged.muxes) {
    os << "<tr><td>";
    for (size_t i = 0; i < m.sinks.size(); ++i)
      os << (i ? ", " : "") << escape(pin_label(g, prob.fus(), m.sinks[i]));
    os << "</td><td>";
    for (size_t i = 0; i < m.sources.size(); ++i)
      os << (i ? ", " : "")
         << escape(endpoint_label(g, prob.fus(), m.sources[i]));
    os << "</td><td>" << m.width() << "</td></tr>\n";
  }
  os << "</table>\n</body></html>\n";
  return os.str();
}

}  // namespace salsa
