#include "io/text_format.h"

#include <map>
#include <sstream>
#include <vector>

namespace salsa {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;
    out.push_back(tok);
  }
  return out;
}

[[noreturn]] void parse_fail(int line_no, const std::string& msg) {
  fail("parse error at line " + std::to_string(line_no) + ": " + msg);
}

}  // namespace

ParsedDesign parse_design(std::istream& in) {
  ParsedDesign design;
  design.cdfg = std::make_unique<Cdfg>("unnamed");
  Cdfg* g = design.cdfg.get();

  std::map<std::string, ValueId> values;
  std::map<std::string, NodeId> named_nodes;  // operators and outputs
  struct PendingNext {
    std::string state, value;
    int line;
  };
  std::vector<PendingNext> nexts;
  struct PendingAt {
    std::string node;
    int step, line;
  };
  std::vector<PendingAt> ats;
  bool have_schedule = false;
  int sched_length = 0;
  bool pipelined = false;

  auto value_of = [&](const std::string& name, int line_no) {
    const auto it = values.find(name);
    if (it == values.end()) parse_fail(line_no, "unknown value '" + name + "'");
    return it->second;
  };
  auto define = [&](const std::string& name, ValueId v, int line_no) {
    if (!values.emplace(name, v).second)
      parse_fail(line_no, "value '" + name + "' defined twice");
  };

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& kw = tok[0];
    auto need = [&](size_t n) {
      if (tok.size() != n + 1)
        parse_fail(line_no, "'" + kw + "' expects " + std::to_string(n) +
                                " argument(s)");
    };
    if (kw == "cdfg") {
      need(1);
      *g = Cdfg(tok[1]);
      values.clear();
      named_nodes.clear();
    } else if (kw == "input") {
      need(1);
      define(tok[1], g->add_input(tok[1]), line_no);
    } else if (kw == "state") {
      need(1);
      define(tok[1], g->add_state(tok[1]), line_no);
    } else if (kw == "const") {
      if (tok.size() != 2 && tok.size() != 3)
        parse_fail(line_no, "'const' expects a value and an optional name");
      int64_t v = 0;
      try {
        v = std::stoll(tok[1]);
      } catch (...) {
        parse_fail(line_no, "bad constant '" + tok[1] + "'");
      }
      const std::string name = tok.size() == 3 ? tok[2] : "c" + tok[1];
      define(name, g->add_const(v, name), line_no);
    } else if (kw == "add" || kw == "sub" || kw == "mul") {
      need(3);
      const OpKind kind = kw == "add"   ? OpKind::kAdd
                          : kw == "sub" ? OpKind::kSub
                                        : OpKind::kMul;
      const ValueId v = g->add_op(kind, value_of(tok[2], line_no),
                                  value_of(tok[3], line_no), tok[1]);
      define(tok[1], v, line_no);
      named_nodes[tok[1]] = g->producer(v);
    } else if (kw == "nop") {
      need(2);
      const ValueId v = g->add_nop(value_of(tok[2], line_no), tok[1]);
      define(tok[1], v, line_no);
      named_nodes[tok[1]] = g->producer(v);
    } else if (kw == "output") {
      need(2);
      const NodeId n = g->add_output(value_of(tok[2], line_no), tok[1]);
      if (!named_nodes.emplace(tok[1], n).second)
        parse_fail(line_no, "node name '" + tok[1] + "' reused");
    } else if (kw == "next") {
      need(2);
      nexts.push_back({tok[1], tok[2], line_no});
    } else if (kw == "schedule") {
      if (tok.size() != 2 && tok.size() != 3)
        parse_fail(line_no, "'schedule' expects a length and optional 'pipelined'");
      try {
        sched_length = std::stoi(tok[1]);
      } catch (...) {
        parse_fail(line_no, "bad schedule length '" + tok[1] + "'");
      }
      if (tok.size() == 3) {
        if (tok[2] != "pipelined")
          parse_fail(line_no, "unknown schedule flag '" + tok[2] + "'");
        pipelined = true;
      }
      have_schedule = true;
    } else if (kw == "at") {
      need(2);
      if (!have_schedule) parse_fail(line_no, "'at' before 'schedule'");
      int step = 0;
      try {
        step = std::stoi(tok[2]);
      } catch (...) {
        parse_fail(line_no, "bad step '" + tok[2] + "'");
      }
      ats.push_back({tok[1], step, line_no});
    } else {
      parse_fail(line_no, "unknown directive '" + kw + "'");
    }
  }

  for (const PendingNext& pn : nexts) {
    g->set_state_next(value_of(pn.state, pn.line), value_of(pn.value, pn.line));
  }
  g->validate();

  if (have_schedule) {
    design.hw.pipelined_mul = pipelined;
    design.schedule.emplace(*g, design.hw, sched_length);
    for (const PendingAt& pa : ats) {
      const auto it = named_nodes.find(pa.node);
      if (it == named_nodes.end())
        parse_fail(pa.line, "unknown node '" + pa.node + "'");
      design.schedule->set_start(it->second, pa.step);
    }
    design.schedule->validate();
  }
  return design;
}

ParsedDesign parse_design_string(const std::string& text) {
  std::istringstream is(text);
  return parse_design(is);
}

std::string write_design(const Cdfg& g, const Schedule* schedule) {
  std::ostringstream os;
  os << "cdfg " << g.name() << "\n";
  // Emit in node order: sources first is guaranteed by construction order
  // being a valid topological order for values, but operators may reference
  // later-defined values in cyclic graphs only through 'next' lines, which
  // come last — so plain node order works except for operator operand
  // forward references. Use a topological order of the nodes to be safe.
  for (NodeId n : g.topo_order()) {
    const Node& nd = g.node(n);
    switch (nd.kind) {
      case OpKind::kInput:
        os << "input " << nd.name << "\n";
        break;
      case OpKind::kState:
        os << "state " << nd.name << "\n";
        break;
      case OpKind::kConst:
        os << "const " << nd.cvalue << " " << nd.name << "\n";
        break;
      case OpKind::kAdd:
      case OpKind::kSub:
      case OpKind::kMul:
        os << op_name(nd.kind) << " " << nd.name << " "
           << g.value(nd.ins[0]).name << " " << g.value(nd.ins[1]).name
           << "\n";
        break;
      case OpKind::kNop:
        os << "nop " << nd.name << " " << g.value(nd.ins[0]).name << "\n";
        break;
      case OpKind::kOutput:
        break;  // emitted below, in declaration order
    }
  }
  // Outputs in their original order (a topological order may permute them,
  // and output position is meaningful to evaluators and simulators).
  for (NodeId n : g.output_nodes())
    os << "output " << g.node(n).name << " " << g.value(g.node(n).ins[0]).name
       << "\n";
  for (NodeId sn : g.state_nodes()) {
    const Node& st = g.node(sn);
    os << "next " << st.name << " " << g.value(st.state_next).name << "\n";
  }
  if (schedule != nullptr) {
    os << "schedule " << schedule->length()
       << (schedule->hw().pipelined_mul ? " pipelined" : "") << "\n";
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      const Node& nd = g.node(n);
      if (is_operation(nd.kind) || nd.kind == OpKind::kOutput)
        os << "at " << nd.name << " " << schedule->start(n) << "\n";
    }
  }
  return os.str();
}

}  // namespace salsa
