// Human-readable allocation reports: the operator-to-FU table, each
// storage's register chain (with transfers, pass-throughs and copies made
// explicit), and the interconnect bill. Used by salsa_cli and handy when
// debugging a binding by eye.
#pragma once

#include <string>

#include "core/binding.h"
#include "core/improver.h"

namespace salsa {

/// Full report: FU table, storage chains, cost summary.
std::string allocation_report(const Binding& b);

/// One-line-per-storage register chain, e.g.
///   sv2: R3 R3 R3 ->R5(via ALU1) R5 | copy@2 R7
std::string storage_chain(const Binding& b, int sid);

/// Per-move-kind search statistics table (attempted, accepted, acceptance
/// rate, mean proposed delta) plus a totals line including uphill moves and
/// ILS kicks.
std::string search_stats_report(const ImproveStats& stats);

}  // namespace salsa
