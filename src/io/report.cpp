#include "io/report.h"

#include <algorithm>
#include <sstream>

#include "core/cost.h"
#include "util/table.h"

namespace salsa {

std::string storage_chain(const Binding& b, int sid) {
  const AllocProblem& prob = b.prob();
  const Lifetimes& lt = prob.lifetimes();
  const Storage& s = lt.storage(sid);
  const StorageBinding& sb = b.sto(sid);
  std::ostringstream os;
  os << s.name << " [steps " << s.birth << "..+"
     << s.len - 1 << (s.wraps ? ", wraps" : "") << "]:";
  for (int seg = 0; seg < s.len; ++seg) {
    const auto& cells = sb.cells[static_cast<size_t>(seg)];
    os << " ";
    for (size_t ci = 0; ci < cells.size(); ++ci) {
      const Cell& c = cells[ci];
      if (ci > 0) os << "+";
      if (seg > 0) {
        const Cell& parent =
            sb.cells[static_cast<size_t>(seg) - 1][static_cast<size_t>(c.parent)];
        if (parent.reg != c.reg) {
          os << "->";
          if (c.via != kInvalidId)
            os << "(" << prob.fus().fu(c.via).name << ")";
        }
      }
      os << "R" << c.reg;
    }
  }
  return os.str();
}

std::string allocation_report(const Binding& b) {
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const Schedule& sched = prob.sched();
  const Lifetimes& lt = prob.lifetimes();
  std::ostringstream os;

  os << "=== allocation report: " << g.name() << " ===\n";
  const CostBreakdown cost = evaluate_cost(b);
  os << "cost " << cost.total << " — " << cost.fus_used << " FUs, "
     << cost.regs_used << " registers, " << cost.connections
     << " connections, " << cost.muxes << " equivalent 2-1 muxes\n\n";

  TextTable fu_table;
  fu_table.header({"step", "op", "kind", "FU", "operands"});
  std::vector<NodeId> ops = g.operations();
  std::sort(ops.begin(), ops.end(), [&](NodeId a, NodeId c) {
    return sched.start(a) != sched.start(c) ? sched.start(a) < sched.start(c)
                                            : a < c;
  });
  for (NodeId n : ops) {
    const Node& nd = g.node(n);
    std::string operands;
    for (size_t k = 0; k < nd.ins.size(); ++k) {
      if (k) operands += ", ";
      operands += g.value(nd.ins[k]).name;
    }
    if (b.op(n).swap) operands += " (swapped)";
    fu_table.row({std::to_string(sched.start(n)), nd.name, op_name(nd.kind),
                  prob.fus().fu(b.op(n).fu).name, operands});
  }
  os << fu_table.render() << "\nstorage chains:\n";
  for (int sid = 0; sid < lt.num_storages(); ++sid)
    os << "  " << storage_chain(b, sid) << "\n";
  return os.str();
}

std::string search_stats_report(const ImproveStats& stats) {
  std::ostringstream os;
  auto fmt = [](double v) {
    std::ostringstream s;
    s.precision(3);
    s << v;
    return s.str();
  };
  TextTable t;
  t.header({"move", "attempted", "accepted", "accept%", "mean delta"});
  for (int k = 0; k < kNumMoveKinds; ++k) {
    const MoveKindStats& mk = stats.by_kind[static_cast<size_t>(k)];
    if (mk.attempted == 0) continue;
    const double rate =
        100.0 * static_cast<double>(mk.accepted) /
        static_cast<double>(mk.attempted);
    t.row({move_name(static_cast<MoveKind>(k)), std::to_string(mk.attempted),
           std::to_string(mk.accepted), fmt(rate), fmt(mk.mean_delta())});
  }
  os << t.render();
  os << "trials " << stats.trials << ", attempted " << stats.attempted
     << ", accepted " << stats.accepted << ", uphill " << stats.uphill
     << ", kicks " << stats.kicks << "\n";
  if (stats.spec.batches > 0) {
    const double hit = stats.spec.speculated
                           ? 100.0 * static_cast<double>(stats.spec.served) /
                                 static_cast<double>(stats.spec.speculated)
                           : 0.0;
    os << "speculation: " << stats.spec.batches << " batches, "
       << stats.spec.speculated << " speculated, " << stats.spec.served
       << " served (" << fmt(hit) << "% hit), " << stats.spec.discarded
       << " discarded, " << stats.spec.rescored << " rescored\n";
  }
  return os.str();
}

}  // namespace salsa
