// A small line-oriented text format for CDFGs and schedules, so designs can
// be written by hand, stored next to the code, and driven through the
// allocator with the salsa_cli tool without recompiling.
//
//   cdfg <name>
//   input <name>
//   const <value> [name]
//   state <name>
//   add|sub|mul <result> <operand> <operand>
//   nop <result> <operand>
//   output <port-name> <value>
//   next <state> <value>          # value becomes the state next iteration
//   # comment, blank lines ignored
//
// A schedule section may follow the graph:
//
//   schedule <length> [pipelined]
//   at <node-name> <step>         # operators and outputs; others at 0
//
// Identifiers are value names for operands/results and node names for `at`
// (for operators the result value's name doubles as the node name).
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "cdfg/cdfg.h"
#include "sched/schedule.h"

namespace salsa {

struct ParsedDesign {
  /// Owned behind a stable address (the optional Schedule points into it).
  std::unique_ptr<Cdfg> cdfg;
  /// Present when the text contained a schedule section.
  std::optional<Schedule> schedule;
  HwSpec hw;
};

/// Parses the text format. Throws salsa::Error with a line-numbered message
/// on malformed input. The returned ParsedDesign owns the Cdfg; the optional
/// Schedule references it.
ParsedDesign parse_design(std::istream& in);
ParsedDesign parse_design_string(const std::string& text);

/// Writes a CDFG (and optionally a schedule over it) in the same format;
/// parse_design round-trips it.
std::string write_design(const Cdfg& cdfg, const Schedule* schedule = nullptr);

}  // namespace salsa
