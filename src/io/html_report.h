// Self-contained HTML visualisation of an allocation: cost summary, a
// functional-unit Gantt chart (which op or pass-through occupies each FU at
// each control step), a register occupancy map (which storage holds each
// register, with transfers and copies visible as colour changes), and the
// multiplexer inventory. One file, inline CSS, no external assets — made to
// be attached to a report or opened from the CLI (`salsa_cli --html out`).
#pragma once

#include <string>

#include "core/binding.h"

namespace salsa {

/// Renders the full HTML page for a legal binding.
std::string html_report(const Binding& b, const std::string& title);

}  // namespace salsa
