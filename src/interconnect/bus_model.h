// Bus-oriented interconnect allocation — the paper's first "future work"
// item ("extensions to interconnection allocation should be investigated to
// improve on the point-to-point model"), in the style the paper cites as
// the bus-oriented alternative [6]: module outputs drive shared buses and a
// single level of multiplexers connects buses to module inputs.
//
// Given a legal binding, every data movement is a *transmission*
// (source, control step) — a source broadcasting to any number of sinks in
// one step uses one bus. Transmissions in the same step from different
// sources conflict and need distinct buses. The allocator greedily colours
// transmissions onto buses, preferring to keep a source on one bus (fewer
// bus drivers) and a sink listening to few buses (narrower input muxes).
#pragma once

#include <vector>

#include "core/cost.h"

namespace salsa {

/// One allocated bus.
struct Bus {
  std::vector<Endpoint> drivers;  ///< distinct sources that drive this bus
  /// (source index within drivers, step) pairs: when each driver owns the
  /// bus. At most one driver per step.
  std::vector<std::pair<int, int>> schedule;
};

struct BusAllocation {
  std::vector<Bus> buses;
  /// For each module input pin: the distinct buses it listens to.
  struct SinkTap {
    Pin sink;
    std::vector<int> buses;
  };
  std::vector<SinkTap> taps;

  int num_buses() const { return static_cast<int>(buses.size()); }
  /// Equivalent 2-1 muxes at sink inputs (bus-select muxes).
  int sink_muxes() const;
  /// Bus driver count in excess of one per bus (output selection cost).
  int extra_drivers() const;
};

/// Allocates buses for a legal binding's data movements. Constant sources
/// are excluded (hardwired, as in the point-to-point cost model).
BusAllocation bus_allocate(const Binding& b);

/// Checks the invariants of a bus allocation against its binding: every
/// non-constant connection use is carried by exactly one bus its sink taps,
/// and no bus carries two sources in one step. Returns human-readable
/// violations (empty == legal).
std::vector<std::string> verify_bus_allocation(const Binding& b,
                                               const BusAllocation& alloc);

}  // namespace salsa
