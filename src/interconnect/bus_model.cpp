#include "interconnect/bus_model.h"

#include <algorithm>
#include <map>
#include <set>

namespace salsa {

int BusAllocation::sink_muxes() const {
  int muxes = 0;
  for (const SinkTap& t : taps)
    muxes += std::max(0, static_cast<int>(t.buses.size()) - 1);
  return muxes;
}

int BusAllocation::extra_drivers() const {
  int extra = 0;
  for (const Bus& b : buses)
    extra += std::max(0, static_cast<int>(b.drivers.size()) - 1);
  return extra;
}

BusAllocation bus_allocate(const Binding& b) {
  // Group uses into transmissions: (source, step) -> sinks.
  struct Transmission {
    Endpoint src;
    int step;
    std::vector<Pin> sinks;
  };
  std::map<std::pair<uint64_t, int>, Transmission> tx_map;
  for (const ConnUse& u : connection_uses(b)) {
    if (u.src.kind == Endpoint::Kind::kConstPort) continue;
    Transmission& t = tx_map[{key_of(u.src), u.step}];
    t.src = u.src;
    t.step = u.step;
    t.sinks.push_back(u.sink);
  }
  std::vector<Transmission> txs;
  txs.reserve(tx_map.size());
  for (auto& [k, t] : tx_map) {
    (void)k;
    txs.push_back(std::move(t));
  }
  // Allocate sources with many transmissions first: they anchor buses.
  std::map<uint64_t, int> tx_per_src;
  for (const Transmission& t : txs) ++tx_per_src[key_of(t.src)];
  std::stable_sort(txs.begin(), txs.end(),
                   [&](const Transmission& a, const Transmission& c) {
                     return tx_per_src[key_of(a.src)] >
                            tx_per_src[key_of(c.src)];
                   });

  BusAllocation out;
  // Working state per bus: which steps are taken, which sources/sinks known.
  struct BusState {
    std::set<int> busy_steps;
    std::set<uint64_t> driver_keys;
    std::set<uint64_t> sink_keys;
  };
  std::vector<BusState> state;

  auto place = [&](const Transmission& t) {
    int best = -1;
    int best_score = 1 << 30;
    for (size_t bi = 0; bi < state.size(); ++bi) {
      BusState& bs = state[bi];
      if (bs.busy_steps.count(t.step)) continue;
      // Score: new drivers and new sink taps this placement would create.
      int score = bs.driver_keys.count(key_of(t.src)) ? 0 : 4;
      for (const Pin& s : t.sinks)
        score += bs.sink_keys.count(key_of(s)) ? 0 : 1;
      if (score < best_score) {
        best_score = score;
        best = static_cast<int>(bi);
      }
    }
    // A fresh bus costs one new driver plus all sink taps; open one when
    // nothing existing is cheaper.
    const int fresh_score = 4 + static_cast<int>(t.sinks.size());
    if (best < 0 || best_score > fresh_score) {
      state.emplace_back();
      out.buses.emplace_back();
      best = static_cast<int>(state.size()) - 1;
    }
    BusState& bs = state[static_cast<size_t>(best)];
    Bus& bus = out.buses[static_cast<size_t>(best)];
    bs.busy_steps.insert(t.step);
    if (!bs.driver_keys.count(key_of(t.src))) {
      bs.driver_keys.insert(key_of(t.src));
      bus.drivers.push_back(t.src);
    }
    int driver_idx = 0;
    while (key_of(bus.drivers[static_cast<size_t>(driver_idx)]) !=
           key_of(t.src))
      ++driver_idx;
    bus.schedule.emplace_back(driver_idx, t.step);
    for (const Pin& s : t.sinks) bs.sink_keys.insert(key_of(s));
    return best;
  };

  // Sink taps accumulate as transmissions are placed.
  std::map<uint64_t, BusAllocation::SinkTap> taps;
  for (const Transmission& t : txs) {
    const int bus = place(t);
    for (const Pin& s : t.sinks) {
      BusAllocation::SinkTap& tap = taps[key_of(s)];
      tap.sink = s;
      if (std::find(tap.buses.begin(), tap.buses.end(), bus) ==
          tap.buses.end())
        tap.buses.push_back(bus);
    }
  }
  for (auto& [k, tap] : taps) {
    (void)k;
    std::sort(tap.buses.begin(), tap.buses.end());
    out.taps.push_back(std::move(tap));
  }
  return out;
}

std::vector<std::string> verify_bus_allocation(const Binding& b,
                                               const BusAllocation& alloc) {
  std::vector<std::string> bad;
  // Rebuild (bus, step) -> source key.
  std::map<std::pair<int, int>, uint64_t> bus_at;
  for (size_t bi = 0; bi < alloc.buses.size(); ++bi) {
    const Bus& bus = alloc.buses[bi];
    for (const auto& [driver_idx, step] : bus.schedule) {
      if (driver_idx < 0 ||
          driver_idx >= static_cast<int>(bus.drivers.size())) {
        bad.push_back("bus " + std::to_string(bi) + " has a bad driver index");
        continue;
      }
      const auto key = std::make_pair(static_cast<int>(bi), step);
      const uint64_t src = key_of(bus.drivers[static_cast<size_t>(driver_idx)]);
      const auto [it, inserted] = bus_at.emplace(key, src);
      if (!inserted && it->second != src)
        bad.push_back("bus " + std::to_string(bi) +
                      " carries two sources at step " + std::to_string(step));
    }
  }
  std::map<uint64_t, std::vector<int>> taps_of;
  for (const auto& tap : alloc.taps) taps_of[key_of(tap.sink)] = tap.buses;

  for (const ConnUse& u : connection_uses(b)) {
    if (u.src.kind == Endpoint::Kind::kConstPort) continue;
    const auto tap_it = taps_of.find(key_of(u.sink));
    if (tap_it == taps_of.end()) {
      bad.push_back("a sink pin has no bus taps");
      continue;
    }
    int carriers = 0;
    for (int bus : tap_it->second) {
      const auto it = bus_at.find({bus, u.step});
      if (it != bus_at.end() && it->second == key_of(u.src)) ++carriers;
    }
    if (carriers == 0)
      bad.push_back("a connection use at step " + std::to_string(u.step) +
                    " is not carried by any tapped bus");
  }
  return bad;
}

}  // namespace salsa
