file(REMOVE_RECURSE
  "CMakeFiles/salsa_cli.dir/salsa_cli.cpp.o"
  "CMakeFiles/salsa_cli.dir/salsa_cli.cpp.o.d"
  "salsa_cli"
  "salsa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
