# Empty compiler generated dependencies file for salsa_cli.
# This may be replaced when dependencies are built.
