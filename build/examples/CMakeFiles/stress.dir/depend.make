# Empty dependencies file for stress.
# This may be replaced when dependencies are built.
