file(REMOVE_RECURSE
  "CMakeFiles/stress.dir/stress.cpp.o"
  "CMakeFiles/stress.dir/stress.cpp.o.d"
  "stress"
  "stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
