# Empty compiler generated dependencies file for passthrough_demo.
# This may be replaced when dependencies are built.
