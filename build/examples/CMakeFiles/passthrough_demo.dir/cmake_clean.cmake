file(REMOVE_RECURSE
  "CMakeFiles/passthrough_demo.dir/passthrough_demo.cpp.o"
  "CMakeFiles/passthrough_demo.dir/passthrough_demo.cpp.o.d"
  "passthrough_demo"
  "passthrough_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passthrough_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
