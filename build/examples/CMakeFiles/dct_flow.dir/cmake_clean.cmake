file(REMOVE_RECURSE
  "CMakeFiles/dct_flow.dir/dct_flow.cpp.o"
  "CMakeFiles/dct_flow.dir/dct_flow.cpp.o.d"
  "dct_flow"
  "dct_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dct_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
