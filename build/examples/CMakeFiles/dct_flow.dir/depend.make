# Empty dependencies file for dct_flow.
# This may be replaced when dependencies are built.
