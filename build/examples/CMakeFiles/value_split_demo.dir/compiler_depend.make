# Empty compiler generated dependencies file for value_split_demo.
# This may be replaced when dependencies are built.
