file(REMOVE_RECURSE
  "CMakeFiles/value_split_demo.dir/value_split_demo.cpp.o"
  "CMakeFiles/value_split_demo.dir/value_split_demo.cpp.o.d"
  "value_split_demo"
  "value_split_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_split_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
