file(REMOVE_RECURSE
  "CMakeFiles/ewf_flow.dir/ewf_flow.cpp.o"
  "CMakeFiles/ewf_flow.dir/ewf_flow.cpp.o.d"
  "ewf_flow"
  "ewf_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ewf_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
