# Empty dependencies file for ewf_flow.
# This may be replaced when dependencies are built.
