file(REMOVE_RECURSE
  "../bench/bench_seed_variance"
  "../bench/bench_seed_variance.pdb"
  "CMakeFiles/bench_seed_variance.dir/bench_seed_variance.cpp.o"
  "CMakeFiles/bench_seed_variance.dir/bench_seed_variance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seed_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
