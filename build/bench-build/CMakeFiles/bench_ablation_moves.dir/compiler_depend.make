# Empty compiler generated dependencies file for bench_ablation_moves.
# This may be replaced when dependencies are built.
