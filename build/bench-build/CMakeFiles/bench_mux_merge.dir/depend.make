# Empty dependencies file for bench_mux_merge.
# This may be replaced when dependencies are built.
