file(REMOVE_RECURSE
  "../bench/bench_mux_merge"
  "../bench/bench_mux_merge.pdb"
  "CMakeFiles/bench_mux_merge.dir/bench_mux_merge.cpp.o"
  "CMakeFiles/bench_mux_merge.dir/bench_mux_merge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mux_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
