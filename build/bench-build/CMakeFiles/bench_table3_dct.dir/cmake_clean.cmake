file(REMOVE_RECURSE
  "../bench/bench_table3_dct"
  "../bench/bench_table3_dct.pdb"
  "CMakeFiles/bench_table3_dct.dir/bench_table3_dct.cpp.o"
  "CMakeFiles/bench_table3_dct.dir/bench_table3_dct.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
