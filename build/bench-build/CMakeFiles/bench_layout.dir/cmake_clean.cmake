file(REMOVE_RECURSE
  "../bench/bench_layout"
  "../bench/bench_layout.pdb"
  "CMakeFiles/bench_layout.dir/bench_layout.cpp.o"
  "CMakeFiles/bench_layout.dir/bench_layout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
