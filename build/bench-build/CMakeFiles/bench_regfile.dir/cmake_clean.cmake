file(REMOVE_RECURSE
  "../bench/bench_regfile"
  "../bench/bench_regfile.pdb"
  "CMakeFiles/bench_regfile.dir/bench_regfile.cpp.o"
  "CMakeFiles/bench_regfile.dir/bench_regfile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
