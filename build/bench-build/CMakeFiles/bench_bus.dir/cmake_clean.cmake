file(REMOVE_RECURSE
  "../bench/bench_bus"
  "../bench/bench_bus.pdb"
  "CMakeFiles/bench_bus.dir/bench_bus.cpp.o"
  "CMakeFiles/bench_bus.dir/bench_bus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
