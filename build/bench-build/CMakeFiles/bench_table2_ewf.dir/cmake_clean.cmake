file(REMOVE_RECURSE
  "../bench/bench_table2_ewf"
  "../bench/bench_table2_ewf.pdb"
  "CMakeFiles/bench_table2_ewf.dir/bench_table2_ewf.cpp.o"
  "CMakeFiles/bench_table2_ewf.dir/bench_table2_ewf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ewf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
