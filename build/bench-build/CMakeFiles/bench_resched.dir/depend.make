# Empty dependencies file for bench_resched.
# This may be replaced when dependencies are built.
