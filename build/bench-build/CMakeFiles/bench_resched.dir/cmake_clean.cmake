file(REMOVE_RECURSE
  "../bench/bench_resched"
  "../bench/bench_resched.pdb"
  "CMakeFiles/bench_resched.dir/bench_resched.cpp.o"
  "CMakeFiles/bench_resched.dir/bench_resched.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
