# Empty dependencies file for salsa_frontend.
# This may be replaced when dependencies are built.
