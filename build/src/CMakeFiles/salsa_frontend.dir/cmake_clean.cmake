file(REMOVE_RECURSE
  "CMakeFiles/salsa_frontend.dir/frontend/expr.cpp.o"
  "CMakeFiles/salsa_frontend.dir/frontend/expr.cpp.o.d"
  "libsalsa_frontend.a"
  "libsalsa_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
