file(REMOVE_RECURSE
  "libsalsa_frontend.a"
)
