# Empty compiler generated dependencies file for salsa_bench_suite.
# This may be replaced when dependencies are built.
