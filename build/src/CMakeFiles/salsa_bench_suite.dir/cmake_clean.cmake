file(REMOVE_RECURSE
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/ar_filter.cpp.o"
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/ar_filter.cpp.o.d"
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/dct.cpp.o"
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/dct.cpp.o.d"
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/diffeq.cpp.o"
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/diffeq.cpp.o.d"
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/ewf.cpp.o"
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/ewf.cpp.o.d"
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/fir.cpp.o"
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/fir.cpp.o.d"
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/random_cdfg.cpp.o"
  "CMakeFiles/salsa_bench_suite.dir/bench_suite/random_cdfg.cpp.o.d"
  "libsalsa_bench_suite.a"
  "libsalsa_bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
