file(REMOVE_RECURSE
  "libsalsa_bench_suite.a"
)
