
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_suite/ar_filter.cpp" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/ar_filter.cpp.o" "gcc" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/ar_filter.cpp.o.d"
  "/root/repo/src/bench_suite/dct.cpp" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/dct.cpp.o" "gcc" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/dct.cpp.o.d"
  "/root/repo/src/bench_suite/diffeq.cpp" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/diffeq.cpp.o" "gcc" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/diffeq.cpp.o.d"
  "/root/repo/src/bench_suite/ewf.cpp" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/ewf.cpp.o" "gcc" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/ewf.cpp.o.d"
  "/root/repo/src/bench_suite/fir.cpp" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/fir.cpp.o" "gcc" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/fir.cpp.o.d"
  "/root/repo/src/bench_suite/random_cdfg.cpp" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/random_cdfg.cpp.o" "gcc" "src/CMakeFiles/salsa_bench_suite.dir/bench_suite/random_cdfg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salsa_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
