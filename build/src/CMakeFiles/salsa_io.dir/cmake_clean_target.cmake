file(REMOVE_RECURSE
  "libsalsa_io.a"
)
