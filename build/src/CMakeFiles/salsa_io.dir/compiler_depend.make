# Empty compiler generated dependencies file for salsa_io.
# This may be replaced when dependencies are built.
