
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/html_report.cpp" "src/CMakeFiles/salsa_io.dir/io/html_report.cpp.o" "gcc" "src/CMakeFiles/salsa_io.dir/io/html_report.cpp.o.d"
  "/root/repo/src/io/report.cpp" "src/CMakeFiles/salsa_io.dir/io/report.cpp.o" "gcc" "src/CMakeFiles/salsa_io.dir/io/report.cpp.o.d"
  "/root/repo/src/io/text_format.cpp" "src/CMakeFiles/salsa_io.dir/io/text_format.cpp.o" "gcc" "src/CMakeFiles/salsa_io.dir/io/text_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salsa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salsa_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
