file(REMOVE_RECURSE
  "CMakeFiles/salsa_io.dir/io/html_report.cpp.o"
  "CMakeFiles/salsa_io.dir/io/html_report.cpp.o.d"
  "CMakeFiles/salsa_io.dir/io/report.cpp.o"
  "CMakeFiles/salsa_io.dir/io/report.cpp.o.d"
  "CMakeFiles/salsa_io.dir/io/text_format.cpp.o"
  "CMakeFiles/salsa_io.dir/io/text_format.cpp.o.d"
  "libsalsa_io.a"
  "libsalsa_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
