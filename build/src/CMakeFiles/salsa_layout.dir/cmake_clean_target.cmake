file(REMOVE_RECURSE
  "libsalsa_layout.a"
)
