# Empty dependencies file for salsa_layout.
# This may be replaced when dependencies are built.
