file(REMOVE_RECURSE
  "CMakeFiles/salsa_layout.dir/layout/linear_placement.cpp.o"
  "CMakeFiles/salsa_layout.dir/layout/linear_placement.cpp.o.d"
  "libsalsa_layout.a"
  "libsalsa_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
