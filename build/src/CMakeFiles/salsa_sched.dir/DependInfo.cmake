
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/asap_alap.cpp" "src/CMakeFiles/salsa_sched.dir/sched/asap_alap.cpp.o" "gcc" "src/CMakeFiles/salsa_sched.dir/sched/asap_alap.cpp.o.d"
  "/root/repo/src/sched/force_directed.cpp" "src/CMakeFiles/salsa_sched.dir/sched/force_directed.cpp.o" "gcc" "src/CMakeFiles/salsa_sched.dir/sched/force_directed.cpp.o.d"
  "/root/repo/src/sched/fu_search.cpp" "src/CMakeFiles/salsa_sched.dir/sched/fu_search.cpp.o" "gcc" "src/CMakeFiles/salsa_sched.dir/sched/fu_search.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/CMakeFiles/salsa_sched.dir/sched/list_scheduler.cpp.o" "gcc" "src/CMakeFiles/salsa_sched.dir/sched/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/salsa_sched.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/salsa_sched.dir/sched/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salsa_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
