file(REMOVE_RECURSE
  "CMakeFiles/salsa_sched.dir/sched/asap_alap.cpp.o"
  "CMakeFiles/salsa_sched.dir/sched/asap_alap.cpp.o.d"
  "CMakeFiles/salsa_sched.dir/sched/force_directed.cpp.o"
  "CMakeFiles/salsa_sched.dir/sched/force_directed.cpp.o.d"
  "CMakeFiles/salsa_sched.dir/sched/fu_search.cpp.o"
  "CMakeFiles/salsa_sched.dir/sched/fu_search.cpp.o.d"
  "CMakeFiles/salsa_sched.dir/sched/list_scheduler.cpp.o"
  "CMakeFiles/salsa_sched.dir/sched/list_scheduler.cpp.o.d"
  "CMakeFiles/salsa_sched.dir/sched/schedule.cpp.o"
  "CMakeFiles/salsa_sched.dir/sched/schedule.cpp.o.d"
  "libsalsa_sched.a"
  "libsalsa_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
