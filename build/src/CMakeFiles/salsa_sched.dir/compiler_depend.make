# Empty compiler generated dependencies file for salsa_sched.
# This may be replaced when dependencies are built.
