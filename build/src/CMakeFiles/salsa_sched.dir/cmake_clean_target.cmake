file(REMOVE_RECURSE
  "libsalsa_sched.a"
)
