file(REMOVE_RECURSE
  "libsalsa_cdfg.a"
)
