# Empty dependencies file for salsa_cdfg.
# This may be replaced when dependencies are built.
