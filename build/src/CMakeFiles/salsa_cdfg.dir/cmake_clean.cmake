file(REMOVE_RECURSE
  "CMakeFiles/salsa_cdfg.dir/cdfg/cdfg.cpp.o"
  "CMakeFiles/salsa_cdfg.dir/cdfg/cdfg.cpp.o.d"
  "CMakeFiles/salsa_cdfg.dir/cdfg/dot.cpp.o"
  "CMakeFiles/salsa_cdfg.dir/cdfg/dot.cpp.o.d"
  "CMakeFiles/salsa_cdfg.dir/cdfg/eval.cpp.o"
  "CMakeFiles/salsa_cdfg.dir/cdfg/eval.cpp.o.d"
  "libsalsa_cdfg.a"
  "libsalsa_cdfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_cdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
