
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdfg/cdfg.cpp" "src/CMakeFiles/salsa_cdfg.dir/cdfg/cdfg.cpp.o" "gcc" "src/CMakeFiles/salsa_cdfg.dir/cdfg/cdfg.cpp.o.d"
  "/root/repo/src/cdfg/dot.cpp" "src/CMakeFiles/salsa_cdfg.dir/cdfg/dot.cpp.o" "gcc" "src/CMakeFiles/salsa_cdfg.dir/cdfg/dot.cpp.o.d"
  "/root/repo/src/cdfg/eval.cpp" "src/CMakeFiles/salsa_cdfg.dir/cdfg/eval.cpp.o" "gcc" "src/CMakeFiles/salsa_cdfg.dir/cdfg/eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
