file(REMOVE_RECURSE
  "CMakeFiles/salsa_interconnect.dir/interconnect/bus_model.cpp.o"
  "CMakeFiles/salsa_interconnect.dir/interconnect/bus_model.cpp.o.d"
  "libsalsa_interconnect.a"
  "libsalsa_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
