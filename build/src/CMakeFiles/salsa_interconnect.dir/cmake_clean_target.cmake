file(REMOVE_RECURSE
  "libsalsa_interconnect.a"
)
