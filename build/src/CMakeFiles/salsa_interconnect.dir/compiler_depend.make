# Empty compiler generated dependencies file for salsa_interconnect.
# This may be replaced when dependencies are built.
