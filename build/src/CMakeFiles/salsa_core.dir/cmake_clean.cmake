file(REMOVE_RECURSE
  "CMakeFiles/salsa_core.dir/core/allocator.cpp.o"
  "CMakeFiles/salsa_core.dir/core/allocator.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/annealer.cpp.o"
  "CMakeFiles/salsa_core.dir/core/annealer.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/binding.cpp.o"
  "CMakeFiles/salsa_core.dir/core/binding.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/cost.cpp.o"
  "CMakeFiles/salsa_core.dir/core/cost.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/ils.cpp.o"
  "CMakeFiles/salsa_core.dir/core/ils.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/improver.cpp.o"
  "CMakeFiles/salsa_core.dir/core/improver.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/initial.cpp.o"
  "CMakeFiles/salsa_core.dir/core/initial.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/lifetime.cpp.o"
  "CMakeFiles/salsa_core.dir/core/lifetime.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/moves.cpp.o"
  "CMakeFiles/salsa_core.dir/core/moves.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/mux_merge.cpp.o"
  "CMakeFiles/salsa_core.dir/core/mux_merge.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/resources.cpp.o"
  "CMakeFiles/salsa_core.dir/core/resources.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/sched_explore.cpp.o"
  "CMakeFiles/salsa_core.dir/core/sched_explore.cpp.o.d"
  "CMakeFiles/salsa_core.dir/core/verify.cpp.o"
  "CMakeFiles/salsa_core.dir/core/verify.cpp.o.d"
  "libsalsa_core.a"
  "libsalsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
