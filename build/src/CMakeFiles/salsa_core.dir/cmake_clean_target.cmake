file(REMOVE_RECURSE
  "libsalsa_core.a"
)
