
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocator.cpp" "src/CMakeFiles/salsa_core.dir/core/allocator.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/allocator.cpp.o.d"
  "/root/repo/src/core/annealer.cpp" "src/CMakeFiles/salsa_core.dir/core/annealer.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/annealer.cpp.o.d"
  "/root/repo/src/core/binding.cpp" "src/CMakeFiles/salsa_core.dir/core/binding.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/binding.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/CMakeFiles/salsa_core.dir/core/cost.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/cost.cpp.o.d"
  "/root/repo/src/core/ils.cpp" "src/CMakeFiles/salsa_core.dir/core/ils.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/ils.cpp.o.d"
  "/root/repo/src/core/improver.cpp" "src/CMakeFiles/salsa_core.dir/core/improver.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/improver.cpp.o.d"
  "/root/repo/src/core/initial.cpp" "src/CMakeFiles/salsa_core.dir/core/initial.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/initial.cpp.o.d"
  "/root/repo/src/core/lifetime.cpp" "src/CMakeFiles/salsa_core.dir/core/lifetime.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/lifetime.cpp.o.d"
  "/root/repo/src/core/moves.cpp" "src/CMakeFiles/salsa_core.dir/core/moves.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/moves.cpp.o.d"
  "/root/repo/src/core/mux_merge.cpp" "src/CMakeFiles/salsa_core.dir/core/mux_merge.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/mux_merge.cpp.o.d"
  "/root/repo/src/core/resources.cpp" "src/CMakeFiles/salsa_core.dir/core/resources.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/resources.cpp.o.d"
  "/root/repo/src/core/sched_explore.cpp" "src/CMakeFiles/salsa_core.dir/core/sched_explore.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/sched_explore.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/CMakeFiles/salsa_core.dir/core/verify.cpp.o" "gcc" "src/CMakeFiles/salsa_core.dir/core/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salsa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salsa_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
