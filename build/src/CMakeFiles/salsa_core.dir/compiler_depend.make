# Empty compiler generated dependencies file for salsa_core.
# This may be replaced when dependencies are built.
