file(REMOVE_RECURSE
  "CMakeFiles/salsa_util.dir/util/diagnostics.cpp.o"
  "CMakeFiles/salsa_util.dir/util/diagnostics.cpp.o.d"
  "CMakeFiles/salsa_util.dir/util/rng.cpp.o"
  "CMakeFiles/salsa_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/salsa_util.dir/util/table.cpp.o"
  "CMakeFiles/salsa_util.dir/util/table.cpp.o.d"
  "libsalsa_util.a"
  "libsalsa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
