file(REMOVE_RECURSE
  "libsalsa_util.a"
)
