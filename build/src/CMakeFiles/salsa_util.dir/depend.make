# Empty dependencies file for salsa_util.
# This may be replaced when dependencies are built.
