file(REMOVE_RECURSE
  "libsalsa_baseline.a"
)
