file(REMOVE_RECURSE
  "CMakeFiles/salsa_baseline.dir/baseline/bipartite.cpp.o"
  "CMakeFiles/salsa_baseline.dir/baseline/bipartite.cpp.o.d"
  "CMakeFiles/salsa_baseline.dir/baseline/exact.cpp.o"
  "CMakeFiles/salsa_baseline.dir/baseline/exact.cpp.o.d"
  "CMakeFiles/salsa_baseline.dir/baseline/left_edge.cpp.o"
  "CMakeFiles/salsa_baseline.dir/baseline/left_edge.cpp.o.d"
  "CMakeFiles/salsa_baseline.dir/baseline/traditional.cpp.o"
  "CMakeFiles/salsa_baseline.dir/baseline/traditional.cpp.o.d"
  "libsalsa_baseline.a"
  "libsalsa_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
