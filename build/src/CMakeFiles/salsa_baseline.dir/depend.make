# Empty dependencies file for salsa_baseline.
# This may be replaced when dependencies are built.
