file(REMOVE_RECURSE
  "CMakeFiles/salsa_regfile.dir/regfile/regfile.cpp.o"
  "CMakeFiles/salsa_regfile.dir/regfile/regfile.cpp.o.d"
  "libsalsa_regfile.a"
  "libsalsa_regfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
