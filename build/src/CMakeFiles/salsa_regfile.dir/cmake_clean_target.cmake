file(REMOVE_RECURSE
  "libsalsa_regfile.a"
)
