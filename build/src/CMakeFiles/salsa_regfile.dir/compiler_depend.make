# Empty compiler generated dependencies file for salsa_regfile.
# This may be replaced when dependencies are built.
