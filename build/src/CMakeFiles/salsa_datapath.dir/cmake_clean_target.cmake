file(REMOVE_RECURSE
  "libsalsa_datapath.a"
)
