file(REMOVE_RECURSE
  "CMakeFiles/salsa_datapath.dir/datapath/controller.cpp.o"
  "CMakeFiles/salsa_datapath.dir/datapath/controller.cpp.o.d"
  "CMakeFiles/salsa_datapath.dir/datapath/netlist.cpp.o"
  "CMakeFiles/salsa_datapath.dir/datapath/netlist.cpp.o.d"
  "CMakeFiles/salsa_datapath.dir/datapath/simulator.cpp.o"
  "CMakeFiles/salsa_datapath.dir/datapath/simulator.cpp.o.d"
  "CMakeFiles/salsa_datapath.dir/datapath/testbench.cpp.o"
  "CMakeFiles/salsa_datapath.dir/datapath/testbench.cpp.o.d"
  "CMakeFiles/salsa_datapath.dir/datapath/vcd.cpp.o"
  "CMakeFiles/salsa_datapath.dir/datapath/vcd.cpp.o.d"
  "CMakeFiles/salsa_datapath.dir/datapath/verilog.cpp.o"
  "CMakeFiles/salsa_datapath.dir/datapath/verilog.cpp.o.d"
  "libsalsa_datapath.a"
  "libsalsa_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salsa_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
