# Empty compiler generated dependencies file for salsa_datapath.
# This may be replaced when dependencies are built.
