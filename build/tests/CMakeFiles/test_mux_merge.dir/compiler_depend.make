# Empty compiler generated dependencies file for test_mux_merge.
# This may be replaced when dependencies are built.
