file(REMOVE_RECURSE
  "CMakeFiles/test_mux_merge.dir/test_mux_merge.cpp.o"
  "CMakeFiles/test_mux_merge.dir/test_mux_merge.cpp.o.d"
  "test_mux_merge"
  "test_mux_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mux_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
