file(REMOVE_RECURSE
  "CMakeFiles/test_hw_variants.dir/test_hw_variants.cpp.o"
  "CMakeFiles/test_hw_variants.dir/test_hw_variants.cpp.o.d"
  "test_hw_variants"
  "test_hw_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
