# Empty dependencies file for test_hw_variants.
# This may be replaced when dependencies are built.
