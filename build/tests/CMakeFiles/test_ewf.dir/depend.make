# Empty dependencies file for test_ewf.
# This may be replaced when dependencies are built.
