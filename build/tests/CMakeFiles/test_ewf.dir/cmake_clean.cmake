file(REMOVE_RECURSE
  "CMakeFiles/test_ewf.dir/test_ewf.cpp.o"
  "CMakeFiles/test_ewf.dir/test_ewf.cpp.o.d"
  "test_ewf"
  "test_ewf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ewf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
