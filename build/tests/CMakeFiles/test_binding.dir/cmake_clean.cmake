file(REMOVE_RECURSE
  "CMakeFiles/test_binding.dir/test_binding.cpp.o"
  "CMakeFiles/test_binding.dir/test_binding.cpp.o.d"
  "test_binding"
  "test_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
