# Empty compiler generated dependencies file for test_improver.
# This may be replaced when dependencies are built.
