file(REMOVE_RECURSE
  "CMakeFiles/test_improver.dir/test_improver.cpp.o"
  "CMakeFiles/test_improver.dir/test_improver.cpp.o.d"
  "test_improver"
  "test_improver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_improver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
