# Empty compiler generated dependencies file for test_dct.
# This may be replaced when dependencies are built.
