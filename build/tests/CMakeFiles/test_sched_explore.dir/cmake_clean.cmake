file(REMOVE_RECURSE
  "CMakeFiles/test_sched_explore.dir/test_sched_explore.cpp.o"
  "CMakeFiles/test_sched_explore.dir/test_sched_explore.cpp.o.d"
  "test_sched_explore"
  "test_sched_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
