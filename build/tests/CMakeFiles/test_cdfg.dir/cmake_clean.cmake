file(REMOVE_RECURSE
  "CMakeFiles/test_cdfg.dir/test_cdfg.cpp.o"
  "CMakeFiles/test_cdfg.dir/test_cdfg.cpp.o.d"
  "test_cdfg"
  "test_cdfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
