# Empty dependencies file for test_passthrough.
# This may be replaced when dependencies are built.
