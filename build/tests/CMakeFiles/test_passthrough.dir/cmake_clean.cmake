file(REMOVE_RECURSE
  "CMakeFiles/test_passthrough.dir/test_passthrough.cpp.o"
  "CMakeFiles/test_passthrough.dir/test_passthrough.cpp.o.d"
  "test_passthrough"
  "test_passthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
