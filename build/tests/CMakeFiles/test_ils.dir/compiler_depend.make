# Empty compiler generated dependencies file for test_ils.
# This may be replaced when dependencies are built.
