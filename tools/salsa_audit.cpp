// salsa_audit — the SalsaCheck command line: drives the move fuzzer, the
// determinism/speculation audits and the index/bitplane/scaling
// cross-checks over the standard targets, printing one summary line per
// audit and exiting non-zero on any violation. Run with --help for the
// full flag catalogue (kUsage below is the single source of truth; an
// unknown flag prints it and exits 2 so CI invocations cannot silently
// mis-type a mode).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <chrono>

#include "analysis/determinism.h"
#include "analysis/digest.h"
#include "analysis/fuzz.h"
#include "core/initial.h"
#include "datapath/event_sim.h"
#include "datapath/memory.h"
#include "frontend/generate.h"
#include "core/moves.h"
#include "core/search_engine.h"
#include "util/bitplane.h"
#include "util/flat_map.h"
#include "util/rng.h"

using namespace salsa;

namespace {

// One source of truth for the flag listing: printed by --help (stdout,
// exit 0) and after an unknown flag (stderr, exit 2). CI drives this tool
// with long hand-written invocations, where a silently mis-typed flag used
// to be easy to commit; now every flag either parses or stops the run with
// the catalogue in view.
constexpr const char* kUsage = R"(salsa_audit — the SalsaCheck command line

usage: salsa_audit [options]

general
  --target ewf|dct|random|all   standard target(s) to audit (default: all)
  --transactions N   feasible transactions per target (default: 10000)
  --seed S           fuzz seed; a CI failure replays with the printed seed
  --every N          audit every Nth transaction (default: 1 = all)
  --commit-prob P    probability a feasible move is committed (default: 0.5)
  --weighted         draw moves by MoveConfig weight instead of uniformly
  --artifacts DIR    directory for failure artifacts (seed + binding JSON)
  --dump             print each target's start binding JSON and exit
  --help, -h         print this listing and exit

audit modes
  --determinism      replay allocate() per thread count and diff the
                     per-restart digest streams (default threads 1,2,8)
  --restarts R       restarts for the determinism audit (default: 6)
  --threads a,b,c    comma-separated thread counts for the determinism audit
  --speculation      fuzz the speculative proposal pipeline: seeded k-way
                     batches diffed against a sequential reference run
  --spec-k K         speculative batch width (default: 8)
  --spec-steps N     candidates served per speculation fuzz run (default: 4000)
  --index            cross-check the flat connection index against a
                     from-scratch rebuild after every commit
  --index-commits N  commits per index audit run (default: 2000)
  --bitplane         run the packed-vs-scalar occupancy differential after
                     every commit
  --bitplane-commits N  commits per bitplane audit run (default: 2000)
  --segment          window-vs-whole differential: a segment-windowed engine
                     against a whole-storage-walk reference on the identical
                     move stream, cost integers and digests cross-checked
                     after every transaction
  --scaling          fuzz a generated mid-size cascade under the
                     size-sampled auditor (fails if sampling never engages)
  --scaling-ops N    target operation count for --scaling (default: 5000)
  --sim              engine-pair differential: event-driven vs full-eval
                     simulation on every target (initial and scrambled
                     bindings), one generated cascade, and the
                     memory-traffic subsystem end to end
  --sim-ops N        cascade operation count for --sim (default: 2000)
  --sim-wall         exclusive mode: time both engines on ewf and a large
                     generated cascade, verify they agree, and print the
                     sim wall JSON rows (input to scripts/check_sim_gate.py)
  --sim-wall-ops N   cascade operation count for --sim-wall (default: 10000)

mutation tests (expected output: a VIOLATION; CI asserts non-zero exit)
  --inject-broken-undo N   break the Nth rollback's undo
  --spec-skip N            let the Nth footprint-conflict hit slip through
  --break-flat-erase N     Nth FlatMap erase skips backward-shift compaction
  --break-bitplane-word N  Nth ranged busy-plane word update left broken
  --break-segment-window N Nth windowed claim re-add drops its last segment
  --break-event-skip N     Nth event wake-up lost (occurrence marked handled)
)";

std::vector<int> parse_thread_list(const std::string& arg) {
  std::vector<int> out;
  std::string cur;
  for (char c : arg + ",") {
    if (c == ',') {
      if (!cur.empty()) out.push_back(std::atoi(cur.c_str()));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (out.empty()) fail("--threads needs a comma-separated list, got '" + arg + "'");
  return out;
}

// --index: a weighted random search (commit-biased, so the connection index
// churns through creation, refcount bumps and backward-shift erases) with
// the incrementally maintained flat index cross-checked against a
// from-scratch rebuild after every commit. An Error out of the engine (for
// example FlatMap's missing-key CHECK on a corrupted table) counts as a
// caught violation, same as a rebuild mismatch — that is the point of the
// --break-flat-erase mutation.
struct IndexAuditResult {
  long commits = 0;
  long proposals = 0;
  bool ok = true;
  std::string failure;
};

IndexAuditResult run_index_audit(const AllocProblem& prob, uint64_t seed,
                                 long commits_target) {
  IndexAuditResult res;
  try {
    Binding start = initial_allocation(
        prob, InitialOptions{.seed = derive_seed(seed, 0)});
    SearchEngine eng(start);
    Rng rng(derive_seed(seed, 1));
    const MoveConfig moves = MoveConfig::salsa_default();
    const long cap = commits_target * 50;
    while (res.commits < commits_target && res.proposals < cap) {
      ++res.proposals;
      if (!eng.propose(moves.pick(rng), rng)) continue;
      if (rng.chance(0.3)) {
        eng.rollback();
        continue;
      }
      eng.commit();
      ++res.commits;
      std::string why;
      if (!eng.index_matches_rebuild(&why)) {
        res.ok = false;
        res.failure = "index diverged from rebuild after commit " +
                      std::to_string(res.commits) + ": " + why;
        break;
      }
    }
  } catch (const Error& e) {
    res.ok = false;
    res.failure = std::string("engine check failed: ") + e.what();
  }
  return res;
}

// --bitplane: same search shape as --index, but the per-commit cross-check
// is the packed-vs-scalar occupancy differential
// (SearchEngine::occupancy_planes_match) — O(resources x steps) word-and-bit
// compares instead of a full O(design) rebuild. The --break-bitplane-word
// mutation degrades one ranged busy-plane word update to a per-bit loop
// that stops one bit short; a rolled-back victim transaction is restored by
// the engine's word journal (so nothing is provable there), but once the
// broken claim commits, the stale bit is a grid/plane divergence this check
// must report.
IndexAuditResult run_bitplane_audit(const AllocProblem& prob, uint64_t seed,
                                    long commits_target) {
  IndexAuditResult res;
  try {
    Binding start = initial_allocation(
        prob, InitialOptions{.seed = derive_seed(seed, 0)});
    SearchEngine eng(start);
    Rng rng(derive_seed(seed, 1));
    const MoveConfig moves = MoveConfig::salsa_default();
    const long cap = commits_target * 50;
    while (res.commits < commits_target && res.proposals < cap) {
      ++res.proposals;
      if (!eng.propose(moves.pick(rng), rng)) continue;
      if (rng.chance(0.3)) {
        eng.rollback();
        continue;
      }
      eng.commit();
      ++res.commits;
      std::string why;
      if (!eng.occupancy_planes_match(&why)) {
        res.ok = false;
        res.failure = "bitplanes diverged from the grids after commit " +
                      std::to_string(res.commits) + ": " + why;
        break;
      }
    }
  } catch (const Error& e) {
    res.ok = false;
    res.failure = std::string("engine check failed: ") + e.what();
  }
  return res;
}

// --sim: the engine-pair differential on one allocation problem — the
// event-driven simulator against the full-evaluation reference on the
// initial binding and again after a move scramble. Engine CHECK failures
// (stale-signal reads, lost events) count as caught violations, same as a
// trace divergence — that is the point of the --break-event-skip mutation.
struct SimAuditResult {
  long checks = 0;
  bool ok = true;
  std::string failure;
};

SimAuditResult run_sim_audit(const AllocProblem& prob, uint64_t seed) {
  SimAuditResult res;
  try {
    Binding b = initial_allocation(
        prob, InitialOptions{.seed = derive_seed(seed, 0)});
    {
      Netlist nl(b);
      const std::string d = random_engine_diff(nl, 5, derive_seed(seed, 2));
      ++res.checks;
      if (!d.empty()) {
        res.ok = false;
        res.failure = "initial binding: " + d;
        return res;
      }
    }
    Rng rng(derive_seed(seed, 3));
    const MoveConfig moves = MoveConfig::salsa_default();
    for (int i = 0; i < 400; ++i) apply_random_move(b, moves.pick(rng), rng);
    Netlist nl(b);
    const std::string d = random_engine_diff(nl, 5, derive_seed(seed, 4));
    ++res.checks;
    if (!d.empty()) {
      res.ok = false;
      res.failure = "scrambled binding: " + d;
    }
  } catch (const Error& e) {
    res.ok = false;
    res.failure = std::string("engine check failed: ") + e.what();
  }
  return res;
}

// --sim-wall: wall-clock rows for the sim gate. Absolute timings are
// meaningless on shared runners (same argument as the scaling gate), so
// scripts/check_sim_gate.py judges the ratio of event-engine ns-per-firing
// on a large cascade to ns-per-firing on EWF, measured in the same run: a
// per-step rescan creeping back into the event engine makes the big
// design's per-firing cost blow up while EWF's barely moves.
int run_sim_wall(int ops, uint64_t seed) {
  struct Case {
    const char* family;
    int iterations;
  };
  std::printf("[\n");
  bool first = true;
  // EWF needs enough iterations to time stably on a noisy shared runner;
  // each row is additionally measured several times and reported as the
  // minimum (the standard noise-floor estimate).
  for (const Case& c : {Case{"ewf", 5000}, Case{"cascade", 3}}) {
    std::unique_ptr<FuzzTarget> target;
    std::unique_ptr<GeneratedDesign> gen;
    const AllocProblem* prob = nullptr;
    int num_ops = 0;
    if (std::string(c.family) == "ewf") {
      target = std::make_unique<FuzzTarget>("ewf");
      prob = &target->prob();
      for (const Node& n : prob->cdfg().nodes())
        if (is_operation(n.kind)) ++num_ops;
    } else {
      gen = std::make_unique<GeneratedDesign>(generate_design(GenParams{
          .family = GenFamily::kFilterCascade,
          .target_ops = ops,
          .seed = 2,
      }));
      prob = gen->problem.get();
      num_ops = gen->num_ops;
    }
    const Binding b = initial_allocation(
        *prob, InitialOptions{.seed = derive_seed(seed, 7)});
    const Netlist nl(b);
    const Cdfg& g = prob->cdfg();
    Rng rng(derive_seed(seed, 8));
    std::vector<std::vector<int64_t>> inputs(
        static_cast<size_t>(c.iterations) + 1,
        std::vector<int64_t>(g.input_nodes().size(), 0));
    for (auto& vec : inputs)
      for (auto& v : vec) v = static_cast<int64_t>(rng.next() % 2001) - 1000;
    const std::vector<int64_t> states(g.state_nodes().size(), 0);

    EventSimStats stats;
    double event_ms = 0, full_ms = 0;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const SimResult ev =
          simulate_events(nl, inputs, states, c.iterations, nullptr, &stats);
      const auto t1 = std::chrono::steady_clock::now();
      const SimResult full = simulate(nl, inputs, states, c.iterations);
      const auto t2 = std::chrono::steady_clock::now();
      if (ev.outputs != full.outputs)
        fail(std::string("sim-wall: engines diverged on ") + c.family);
      const double e =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const double f =
          std::chrono::duration<double, std::milli>(t2 - t1).count();
      if (rep == 0 || e < event_ms) event_ms = e;
      if (rep == 0 || f < full_ms) full_ms = f;
    }
    const double ns_per_firing =
        stats.firings > 0 ? event_ms * 1e6 / static_cast<double>(stats.firings)
                          : 0.0;
    std::printf(
        "%s  {\"benchmark\": \"SimWall\", \"family\": \"%s\", \"ops\": %d, "
        "\"iterations\": %d, \"slots\": %ld, \"firings\": %ld, "
        "\"event_ms\": %.3f, \"full_ms\": %.3f, \"ns_per_firing\": %.2f}",
        first ? "" : ",\n", c.family, num_ops, c.iterations, stats.slots,
        stats.firings, event_ms, full_ms, ns_per_firing);
    first = false;
  }
  std::printf("\n]\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target = "all";
  FuzzParams fuzz;
  SpecFuzzParams spec;
  bool determinism = false, speculation = false, dump = false;
  bool index_audit = false;
  long index_commits = 2000;
  long break_flat_erase = 0;
  bool bitplane_audit = false;
  long bitplane_commits = 2000;
  long break_bitplane_word = 0;
  bool segment_audit = false;
  long break_segment_window = 0;
  bool scaling = false;
  int scaling_ops = 5000;
  bool sim_audit = false;
  int sim_ops = 2000;
  bool sim_wall = false;
  int sim_wall_ops = 10000;
  long break_event_skip = 0;
  int restarts = 6;
  std::vector<int> threads{1, 2, 8};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) fail("missing argument after " + arg);
      return argv[++i];
    };
    if (arg == "--target") {
      target = next();
    } else if (arg == "--transactions") {
      fuzz.transactions = std::atol(next().c_str());
    } else if (arg == "--seed") {
      fuzz.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--every") {
      fuzz.audit.every = std::atol(next().c_str());
    } else if (arg == "--commit-prob") {
      fuzz.commit_prob = std::atof(next().c_str());
    } else if (arg == "--weighted") {
      fuzz.uniform_kinds = false;
    } else if (arg == "--determinism") {
      determinism = true;
    } else if (arg == "--restarts") {
      restarts = std::atoi(next().c_str());
    } else if (arg == "--threads") {
      threads = parse_thread_list(next());
    } else if (arg == "--artifacts") {
      fuzz.artifact_dir = next();
    } else if (arg == "--inject-broken-undo") {
      // Mutation testing: break the Nth rollback's undo and watch the
      // digest check catch it (expected output: a VIOLATION).
      fuzz.inject_broken_undo_at = std::atol(next().c_str());
    } else if (arg == "--speculation") {
      speculation = true;
    } else if (arg == "--spec-k") {
      spec.k = std::atoi(next().c_str());
    } else if (arg == "--spec-steps") {
      spec.steps = std::atol(next().c_str());
    } else if (arg == "--spec-skip") {
      // Mutation testing: skip the Nth footprint invalidation and watch the
      // replay cross-check / trajectory diff catch it.
      spec.skip_footprint_check_at = std::atol(next().c_str());
    } else if (arg == "--index") {
      index_audit = true;
    } else if (arg == "--index-commits") {
      index_commits = std::atol(next().c_str());
    } else if (arg == "--break-flat-erase") {
      // Mutation testing: skip the Nth erase's backward-shift compaction
      // and watch the rebuild cross-check catch the orphaned keys.
      index_audit = true;
      break_flat_erase = std::atol(next().c_str());
    } else if (arg == "--bitplane") {
      bitplane_audit = true;
    } else if (arg == "--bitplane-commits") {
      bitplane_commits = std::atol(next().c_str());
    } else if (arg == "--break-bitplane-word") {
      // Mutation testing: cripple the Nth ranged busy-plane word update and
      // watch the packed-vs-scalar differential catch the stale bit.
      bitplane_audit = true;
      break_bitplane_word = std::atol(next().c_str());
    } else if (arg == "--segment") {
      segment_audit = true;
    } else if (arg == "--break-segment-window") {
      // Mutation testing: the Nth windowed claim re-add drops its last
      // segment on the add side only, drifting occupancy/refcounts/key
      // cache from the binding — the window-vs-whole differential must
      // catch it.
      segment_audit = true;
      break_segment_window = std::atol(next().c_str());
    } else if (arg == "--scaling") {
      scaling = true;
    } else if (arg == "--scaling-ops") {
      scaling = true;
      scaling_ops = std::atoi(next().c_str());
    } else if (arg == "--sim") {
      sim_audit = true;
    } else if (arg == "--sim-ops") {
      sim_audit = true;
      sim_ops = std::atoi(next().c_str());
    } else if (arg == "--sim-wall") {
      sim_wall = true;
    } else if (arg == "--sim-wall-ops") {
      sim_wall = true;
      sim_wall_ops = std::atoi(next().c_str());
    } else if (arg == "--break-event-skip") {
      // Mutation testing: lose the Nth change-event wake-up (its occurrence
      // is marked handled, so redundant wakes cannot heal it) and watch the
      // engine differential catch the stale signal.
      sim_audit = true;
      break_event_skip = std::atol(next().c_str());
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else {
      std::fprintf(stderr, "salsa_audit: unknown flag '%s'\n\n%s",
                   arg.c_str(), kUsage);
      return 2;
    }
  }

  if (sim_wall) return run_sim_wall(sim_wall_ops, fuzz.seed);

  std::vector<std::string> names;
  if (target == "all") {
    names = FuzzTarget::names();
  } else {
    names.push_back(target);
  }

  bool failed = false;
  for (const std::string& name : names) {
    FuzzTarget t(name);
    if (dump) {
      const Binding start = initial_allocation(
          t.prob(), InitialOptions{.seed = derive_seed(fuzz.seed, 0)});
      std::printf("%s\n", binding_json(start).c_str());
      continue;
    }

    FuzzParams p = fuzz;
    p.name = name;
    const FuzzResult res = run_move_fuzz(t.prob(), p);
    std::printf(
        "fuzz %-6s seed %llu: %ld txns (%ld commit / %ld rollback / %ld "
        "infeasible) in %ld proposals, %ld audited — %s\n",
        name.c_str(), static_cast<unsigned long long>(p.seed),
        res.transactions, res.commits, res.rollbacks, res.infeasible,
        res.proposals, res.audit.audited, res.ok ? "ok" : "VIOLATION");
    if (!res.ok) {
      failed = true;
      std::fprintf(stderr, "  %s\n", res.failure.c_str());
      if (!res.artifact_path.empty())
        std::fprintf(stderr, "  artifact: %s\n", res.artifact_path.c_str());
    }

    if (speculation) {
      SpecFuzzParams sp = spec;
      sp.seed = fuzz.seed;
      sp.audit = fuzz.audit;
      sp.artifact_dir = fuzz.artifact_dir;
      sp.name = name + "-spec";
      const SpecFuzzResult sres = run_speculation_fuzz(t.prob(), sp);
      std::printf(
          "spec %-6s seed %llu k=%d: %ld commits, %ld batches (%ld served / "
          "%ld discarded / %ld rescored) — %s\n",
          name.c_str(), static_cast<unsigned long long>(sp.seed), sp.k,
          sres.commits, sres.spec.batches, sres.spec.served,
          sres.spec.discarded, sres.spec.rescored,
          sres.ok ? "ok" : "VIOLATION");
      if (!sres.ok) {
        failed = true;
        std::fprintf(stderr, "  %s\n", sres.failure.c_str());
        if (!sres.artifact_path.empty())
          std::fprintf(stderr, "  artifact: %s\n", sres.artifact_path.c_str());
      }
    }

    if (index_audit) {
      if (break_flat_erase > 0) {
        // The hook counter is process-wide and cumulative: arm relative to
        // its current value so earlier targets' erases don't consume it.
        flat_map_hooks::break_backward_shift_after =
            flat_map_hooks::erase_count + break_flat_erase;
      }
      const IndexAuditResult ir =
          run_index_audit(t.prob(), fuzz.seed, index_commits);
      std::printf(
          "index %-6s seed %llu: %ld commits cross-checked in %ld proposals "
          "— %s\n",
          name.c_str(), static_cast<unsigned long long>(fuzz.seed),
          ir.commits, ir.proposals, ir.ok ? "ok" : "VIOLATION");
      if (!ir.ok) {
        failed = true;
        std::fprintf(stderr, "  %s\n", ir.failure.c_str());
      }
      if (break_flat_erase > 0 &&
          flat_map_hooks::break_backward_shift_after != 0) {
        // The armed mutation never fired (fewer compacting erases than N):
        // the run proved nothing, which a CI step expecting a VIOLATION
        // must not mistake for the wall standing.
        failed = true;
        flat_map_hooks::break_backward_shift_after = 0;
        std::fprintf(stderr,
                     "  --break-flat-erase %ld never fired (only %ld "
                     "compacting erases)\n",
                     break_flat_erase, flat_map_hooks::erase_count);
      }
    }

    if (bitplane_audit) {
      if (break_bitplane_word > 0) {
        // Like --break-flat-erase: the word-update counter is process-wide
        // (and advances only while armed), so arm relative to its current
        // value in case an earlier target already consumed the mutation.
        bitplane_hooks::break_word_update_after =
            bitplane_hooks::word_update_count + break_bitplane_word;
      }
      const IndexAuditResult br =
          run_bitplane_audit(t.prob(), fuzz.seed, bitplane_commits);
      std::printf(
          "plane %-6s seed %llu: %ld commits differentially checked in %ld "
          "proposals — %s\n",
          name.c_str(), static_cast<unsigned long long>(fuzz.seed),
          br.commits, br.proposals, br.ok ? "ok" : "VIOLATION");
      if (!br.ok) {
        failed = true;
        std::fprintf(stderr, "  %s\n", br.failure.c_str());
      }
      if (break_bitplane_word > 0 &&
          bitplane_hooks::break_word_update_after != 0) {
        // The armed mutation never fired (fewer ranged word updates than
        // N): the run proved nothing, which a CI step expecting a VIOLATION
        // must not mistake for the wall standing.
        failed = true;
        bitplane_hooks::break_word_update_after = 0;
        std::fprintf(stderr,
                     "  --break-bitplane-word %ld never fired (only %ld "
                     "ranged word updates)\n",
                     break_bitplane_word, bitplane_hooks::word_update_count);
      }
    }

    if (segment_audit) {
      if (break_segment_window > 0) {
        // Like the other mutation counters: the windowed-transaction
        // counter is process-wide and cumulative, so arm relative to its
        // current value in case an earlier target already consumed the
        // mutation.
        seg_window_hooks::break_claim_window_after =
            seg_window_hooks::windowed_txns + break_segment_window;
      }
      FuzzParams sp = fuzz;
      sp.name = name + "-segment";
      const SegmentDiffResult sgr = run_segment_diff(t.prob(), sp);
      std::printf(
          "segm  %-6s seed %llu: %ld txns (%ld commits, %ld windowed) "
          "window-vs-whole — %s\n",
          name.c_str(), static_cast<unsigned long long>(sp.seed),
          sgr.transactions, sgr.commits, sgr.windowed,
          sgr.ok ? "ok" : "VIOLATION");
      if (!sgr.ok) {
        failed = true;
        std::fprintf(stderr, "  %s\n", sgr.failure.c_str());
      } else if (sgr.windowed == 0) {
        // A run where no transaction took a non-whole window proved
        // nothing about the windowed path — the audit must not pass on
        // vacuous coverage.
        failed = true;
        std::fprintf(stderr,
                     "  no transaction took a segment window — the windowed "
                     "path was never exercised\n");
      }
      if (break_segment_window > 0 &&
          seg_window_hooks::break_claim_window_after != 0) {
        // The armed mutation never fired (fewer windowed transactions than
        // N): the run proved nothing, which a CI step expecting a VIOLATION
        // must not mistake for the wall standing.
        failed = true;
        seg_window_hooks::break_claim_window_after = 0;
        std::fprintf(stderr,
                     "  --break-segment-window %ld never fired (only %ld "
                     "windowed transactions)\n",
                     break_segment_window, seg_window_hooks::windowed_txns);
      }
    }

    if (sim_audit) {
      if (break_event_skip > 0) {
        // Like the other mutation counters: process-wide, advances only
        // while armed — arm relative to the current value so earlier
        // targets' wakes don't consume it.
        event_sim_hooks::drop_wake_after =
            event_sim_hooks::wake_count + break_event_skip;
      }
      const SimAuditResult sr = run_sim_audit(t.prob(), fuzz.seed);
      std::printf(
          "sim   %-6s seed %llu: %ld engine-pair differentials — %s\n",
          name.c_str(), static_cast<unsigned long long>(fuzz.seed), sr.checks,
          sr.ok ? "ok" : "VIOLATION");
      if (!sr.ok) {
        failed = true;
        std::fprintf(stderr, "  %s\n", sr.failure.c_str());
      }
      if (break_event_skip > 0 && event_sim_hooks::drop_wake_after != 0) {
        // The armed mutation never fired (fewer wakes than N): the run
        // proved nothing, which a CI step expecting a VIOLATION must not
        // mistake for the wall standing.
        failed = true;
        event_sim_hooks::drop_wake_after = 0;
        std::fprintf(stderr,
                     "  --break-event-skip %ld never fired (only %ld "
                     "wake-ups)\n",
                     break_event_skip, event_sim_hooks::wake_count);
      }
    }

    if (sim_audit && !dump && name == names.front()) {
      // Once per run (independent of --target): the differential on one
      // generated cascade — the design sizes the event engine exists for —
      // and the memory-traffic subsystem end to end, where the event-
      // simulated datapath's sampled outputs become LSU programs checked
      // against the zero-latency magic memory.
      try {
        const GeneratedDesign d = generate_design(GenParams{
            .family = GenFamily::kFilterCascade,
            .target_ops = sim_ops,
            .seed = 2,
        });
        Binding gb = initial_allocation(
            *d.problem, InitialOptions{.seed = derive_seed(fuzz.seed, 5)});
        Netlist gnl(gb);
        const std::string gd =
            random_engine_diff(gnl, 2, derive_seed(fuzz.seed, 6));
        std::printf("sim   cascade/%d (%d ops): %s\n", sim_ops, d.num_ops,
                    gd.empty() ? "ok" : "VIOLATION");
        if (!gd.empty()) {
          failed = true;
          std::fprintf(stderr, "  %s\n", gd.c_str());
        }

        const GeneratedDesign md = generate_design(GenParams{
            .family = GenFamily::kMemoryTraffic,
            .target_ops = sim_ops < 500 ? sim_ops : 500,
            .seed = 3,
        });
        Binding mb = initial_allocation(
            *md.problem, InitialOptions{.seed = derive_seed(fuzz.seed, 9)});
        Netlist mnl(mb);
        const int iters = 6;
        Rng mrng(derive_seed(fuzz.seed, 10));
        std::vector<std::vector<int64_t>> min(
            static_cast<size_t>(iters) + 1,
            std::vector<int64_t>(md.graph->input_nodes().size(), 0));
        for (auto& vec : min)
          for (auto& v : vec)
            v = static_cast<int64_t>(mrng.next() % 201) - 100;
        const std::vector<int64_t> mstates(md.graph->state_nodes().size(), 0);
        const SimResult mres = simulate_events(mnl, min, mstates, iters);
        const auto programs = mem_ops_from_outputs(mres, 64);
        const std::string memdiff = diff_memory_sim(programs, 3);
        std::printf("sim   mem/%d (%d ops, %zu lsus): %s\n",
                    sim_ops < 500 ? sim_ops : 500, md.num_ops,
                    programs.size(), memdiff.empty() ? "ok" : "VIOLATION");
        if (!memdiff.empty()) {
          failed = true;
          std::fprintf(stderr, "  %s\n", memdiff.c_str());
        }
      } catch (const Error& e) {
        failed = true;
        std::fprintf(stderr, "sim   generated: engine check failed: %s\n",
                     e.what());
      }
    }

    if (scaling && !dump && name == names.front()) {
      // One generated mid-size design (independent of --target, run once):
      // the move fuzzer under the size-sampled auditor. Every check of the
      // battery still runs — just on every ops/64-th transaction — so this
      // is the audit wall's presence on the scaling corpus, not a weaker
      // wall. A run that did NOT sample is itself a failure: it means the
      // threshold regressed and audited large-design searches are back to
      // O(design) per move.
      const GeneratedDesign d = generate_design(GenParams{
          .family = GenFamily::kFilterCascade,
          .target_ops = scaling_ops,
          .seed = 1,
      });
      FuzzParams p = fuzz;
      p.name = "scaling-cascade" + std::to_string(scaling_ops);
      const FuzzResult res = run_move_fuzz(*d.problem, p);
      const bool expect_sampled =
          p.audit.every <= 1 && p.audit.sample_threshold_ops > 0 &&
          d.num_ops > p.audit.sample_threshold_ops;
      const bool sampled = res.audit.audited < res.audit.txns;
      const bool ok = res.ok && (sampled || !expect_sampled);
      std::printf(
          "scale cascade/%d (%d ops) seed %llu: %ld txns, %ld of %ld "
          "audited — %s\n",
          scaling_ops, d.num_ops, static_cast<unsigned long long>(p.seed),
          res.transactions, res.audit.audited, res.audit.txns,
          ok ? (sampled ? "ok (sampled)" : "ok") : "VIOLATION");
      if (!res.ok) {
        failed = true;
        std::fprintf(stderr, "  %s\n", res.failure.c_str());
        if (!res.artifact_path.empty())
          std::fprintf(stderr, "  artifact: %s\n", res.artifact_path.c_str());
      } else if (!ok) {
        failed = true;
        std::fprintf(stderr,
                     "  auditor audited every transaction of a %d-op design "
                     "— large-design sampling did not engage\n",
                     d.num_ops);
      }
    }

    if (determinism && !dump) {
      AllocatorOptions opts;
      opts.restarts = restarts;
      opts.improve.seed = fuzz.seed;
      opts.initial.seed = derive_seed(fuzz.seed, 99);
      DeterminismOptions dopts;
      dopts.thread_counts = threads;
      const DeterminismReport rep = audit_determinism(t.prob(), opts, dopts);
      std::printf("det  %-6s %d restarts over threads {", name.c_str(),
                  restarts);
      for (size_t k = 0; k < rep.thread_counts.size(); ++k)
        std::printf("%s%d", k ? "," : "", rep.thread_counts[k]);
      std::printf("}: %s\n", rep.ok ? "byte-identical" : "DIVERGED");
      if (!rep.ok) {
        failed = true;
        std::fprintf(stderr, "  %s\n", rep.detail.c_str());
      }
    }
  }
  return failed ? 1 : 0;
}
