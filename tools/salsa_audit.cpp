// salsa_audit — the SalsaCheck command line: drives the move fuzzer and the
// determinism audit over the standard targets, printing one summary line
// per audit and exiting non-zero on any violation.
//
//   salsa_audit [--target ewf|dct|random|all] [--transactions N] [--seed S]
//               [--every N] [--commit-prob P] [--weighted]
//               [--determinism] [--restarts R] [--threads a,b,c]
//               [--artifacts DIR] [--dump]
//
//   --target       which standard target(s) to audit (default: all)
//   --transactions feasible transactions per target (default: 10000)
//   --seed         fuzz seed; a CI failure replays with the printed seed
//   --every        audit every Nth transaction (default: 1 = all)
//   --commit-prob  probability a feasible move is committed (default: 0.5)
//   --weighted     draw moves by MoveConfig weight instead of uniformly
//   --determinism  also replay allocate() per thread count and diff the
//                  per-restart digest streams (default thread counts 1,2,8)
//   --restarts     restarts for the determinism audit (default: 6)
//   --threads      comma-separated thread counts for the determinism audit
//   --artifacts    directory for failure artifacts (seed + binding JSON)
//   --inject-broken-undo N  mutation test: break the Nth rollback's undo
//                  (the digest check must report a VIOLATION)
//   --speculation  also fuzz the speculative proposal pipeline: seeded
//                  k-way batches diffed against a sequential reference run
//   --spec-k       speculative batch width (default: 8)
//   --spec-steps   candidates served per speculation fuzz run (default: 4000)
//   --spec-skip N  mutation test: let the Nth footprint-conflict hit slip
//                  through uninvalidated (expected output: a VIOLATION)
//   --dump         print each target's start binding JSON and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/determinism.h"
#include "analysis/digest.h"
#include "analysis/fuzz.h"
#include "core/initial.h"
#include "util/rng.h"

using namespace salsa;

namespace {

std::vector<int> parse_thread_list(const std::string& arg) {
  std::vector<int> out;
  std::string cur;
  for (char c : arg + ",") {
    if (c == ',') {
      if (!cur.empty()) out.push_back(std::atoi(cur.c_str()));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (out.empty()) fail("--threads needs a comma-separated list, got '" + arg + "'");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target = "all";
  FuzzParams fuzz;
  SpecFuzzParams spec;
  bool determinism = false, speculation = false, dump = false;
  int restarts = 6;
  std::vector<int> threads{1, 2, 8};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) fail("missing argument after " + arg);
      return argv[++i];
    };
    if (arg == "--target") {
      target = next();
    } else if (arg == "--transactions") {
      fuzz.transactions = std::atol(next().c_str());
    } else if (arg == "--seed") {
      fuzz.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--every") {
      fuzz.audit.every = std::atol(next().c_str());
    } else if (arg == "--commit-prob") {
      fuzz.commit_prob = std::atof(next().c_str());
    } else if (arg == "--weighted") {
      fuzz.uniform_kinds = false;
    } else if (arg == "--determinism") {
      determinism = true;
    } else if (arg == "--restarts") {
      restarts = std::atoi(next().c_str());
    } else if (arg == "--threads") {
      threads = parse_thread_list(next());
    } else if (arg == "--artifacts") {
      fuzz.artifact_dir = next();
    } else if (arg == "--inject-broken-undo") {
      // Mutation testing: break the Nth rollback's undo and watch the
      // digest check catch it (expected output: a VIOLATION).
      fuzz.inject_broken_undo_at = std::atol(next().c_str());
    } else if (arg == "--speculation") {
      speculation = true;
    } else if (arg == "--spec-k") {
      spec.k = std::atoi(next().c_str());
    } else if (arg == "--spec-steps") {
      spec.steps = std::atol(next().c_str());
    } else if (arg == "--spec-skip") {
      // Mutation testing: skip the Nth footprint invalidation and watch the
      // replay cross-check / trajectory diff catch it.
      spec.skip_footprint_check_at = std::atol(next().c_str());
    } else if (arg == "--dump") {
      dump = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  std::vector<std::string> names;
  if (target == "all") {
    names = FuzzTarget::names();
  } else {
    names.push_back(target);
  }

  bool failed = false;
  for (const std::string& name : names) {
    FuzzTarget t(name);
    if (dump) {
      const Binding start = initial_allocation(
          t.prob(), InitialOptions{.seed = derive_seed(fuzz.seed, 0)});
      std::printf("%s\n", binding_json(start).c_str());
      continue;
    }

    FuzzParams p = fuzz;
    p.name = name;
    const FuzzResult res = run_move_fuzz(t.prob(), p);
    std::printf(
        "fuzz %-6s seed %llu: %ld txns (%ld commit / %ld rollback / %ld "
        "infeasible) in %ld proposals, %ld audited — %s\n",
        name.c_str(), static_cast<unsigned long long>(p.seed),
        res.transactions, res.commits, res.rollbacks, res.infeasible,
        res.proposals, res.audit.audited, res.ok ? "ok" : "VIOLATION");
    if (!res.ok) {
      failed = true;
      std::fprintf(stderr, "  %s\n", res.failure.c_str());
      if (!res.artifact_path.empty())
        std::fprintf(stderr, "  artifact: %s\n", res.artifact_path.c_str());
    }

    if (speculation) {
      SpecFuzzParams sp = spec;
      sp.seed = fuzz.seed;
      sp.audit = fuzz.audit;
      sp.artifact_dir = fuzz.artifact_dir;
      sp.name = name + "-spec";
      const SpecFuzzResult sres = run_speculation_fuzz(t.prob(), sp);
      std::printf(
          "spec %-6s seed %llu k=%d: %ld commits, %ld batches (%ld served / "
          "%ld discarded / %ld rescored) — %s\n",
          name.c_str(), static_cast<unsigned long long>(sp.seed), sp.k,
          sres.commits, sres.spec.batches, sres.spec.served,
          sres.spec.discarded, sres.spec.rescored,
          sres.ok ? "ok" : "VIOLATION");
      if (!sres.ok) {
        failed = true;
        std::fprintf(stderr, "  %s\n", sres.failure.c_str());
        if (!sres.artifact_path.empty())
          std::fprintf(stderr, "  artifact: %s\n", sres.artifact_path.c_str());
      }
    }

    if (determinism && !dump) {
      AllocatorOptions opts;
      opts.restarts = restarts;
      opts.improve.seed = fuzz.seed;
      opts.initial.seed = derive_seed(fuzz.seed, 99);
      DeterminismOptions dopts;
      dopts.thread_counts = threads;
      const DeterminismReport rep = audit_determinism(t.prob(), opts, dopts);
      std::printf("det  %-6s %d restarts over threads {", name.c_str(),
                  restarts);
      for (size_t k = 0; k < rep.thread_counts.size(); ++k)
        std::printf("%s%d", k ? "," : "", rep.thread_counts[k]);
      std::printf("}: %s\n", rep.ok ? "byte-identical" : "DIVERGED");
      if (!rep.ok) {
        failed = true;
        std::fprintf(stderr, "  %s\n", rep.detail.c_str());
      }
    }
  }
  return failed ? 1 : 0;
}
